#pragma once

#include "core/dsl/expr_builder.hpp"

namespace cyclone::fv3::fn {

// Reusable stencil subexpressions — the analog of GT4Py's `@gtscript.function`
// library that FV3's Python port builds its stencils from. Each helper
// returns an expression tree that inlines into the calling stencil (exactly
// like gtscript functions inline before lowering).

using dsl::E;
using dsl::FieldVar;

/// Centered x gradient: (f(i+1) - f(i-1)) / 2 * rdx.
inline E grad_x(const FieldVar& f, const FieldVar& rdx) {
  return (f(1, 0) - f(-1, 0)) * 0.5 * E(rdx);
}

/// Centered y gradient.
inline E grad_y(const FieldVar& f, const FieldVar& rdy) {
  return (f(0, 1) - f(0, -1)) * 0.5 * E(rdy);
}

/// Five-point Laplacian with metric terms.
inline E laplacian(const FieldVar& f, const FieldVar& rdx, const FieldVar& rdy) {
  return (f(1, 0) - 2.0 * E(f) + f(-1, 0)) * E(rdx) * E(rdx) +
         (f(0, 1) - 2.0 * E(f) + f(0, -1)) * E(rdy) * E(rdy);
}

/// Face average toward -i (value at the face between i-1 and i).
inline E avg_x(const FieldVar& f) { return (f(-1, 0) + E(f)) * 0.5; }

/// Face average toward -j.
inline E avg_y(const FieldVar& f) { return (f(0, -1) + E(f)) * 0.5; }

/// Vertical midpoint of an interface field at cell k.
inline E mid_k(const FieldVar& f) { return (E(f) + f.at_k(1)) * 0.5; }

/// First-order upwind face value in x given a face Courant number.
inline E upwind_x(const FieldVar& q, const FieldVar& cr) {
  return dsl::select(E(cr) > 0.0, q(-1, 0), E(q));
}

/// First-order upwind face value in y.
inline E upwind_y(const FieldVar& q, const FieldVar& cr) {
  return dsl::select(E(cr) > 0.0, q(0, -1), E(q));
}

/// Flux-form divergence update increment: (fx - fx(i+1)) + (fy - fy(j+1)).
inline E flux_divergence(const FieldVar& fx, const FieldVar& fy) {
  return (E(fx) - fx(1, 0)) + (E(fy) - fy(0, 1));
}

/// Smooth ramp in [0, 1]: sin^2(pi/2 * clamp((edge - x) / width)).
inline E sponge_ramp(const E& x, const E& edge, const E& width) {
  E t = dsl::min(dsl::max((edge - x) / width, E(0.0)), E(1.0));
  E s = dsl::sin(E(1.5707963267948966) * t);
  return s * s;
}

/// Relative-vorticity expression.
inline E vorticity(const FieldVar& u, const FieldVar& v, const FieldVar& rdx,
                   const FieldVar& rdy) {
  return grad_x(v, rdx) - grad_y(u, rdy);
}

/// Horizontal divergence expression.
inline E divergence(const FieldVar& u, const FieldVar& v, const FieldVar& rdx,
                    const FieldVar& rdy) {
  return grad_x(u, rdx) + grad_y(v, rdy);
}

/// Kinetic energy per unit mass.
inline E kinetic_energy(const FieldVar& u, const FieldVar& v) {
  return (E(u) * E(u) + E(v) * E(v)) * 0.5;
}

}  // namespace cyclone::fv3::fn
