#include "fv3/state.hpp"

#include <cmath>

namespace cyclone::fv3 {

namespace {

constexpr int kHalo = 3;

/// Transient intermediates of the acoustic step (no one outside the program
/// observes them between steps).
const char* const kTransients[] = {
    "uc",  "vc",  "ut",  "vt",  "divg", "vort", "ke",  "delpc", "ptc", "wc",
    "crx", "cry", "fx",  "fy",  "fx2",  "fy2",  "fxw", "fyw",   "damp",
    "pp",  "aa",  "bb",  "cc",  "rhs",  "gam",  "pem", "fz",    "dpr",
    "qm",  "dp2", "divg2",
};

}  // namespace

ModelState::ModelState(const FvConfig& config, const grid::Partitioner& part, int rank,
                       FieldPlacer placer)
    : config_(config), geom_(grid::GridGeometry::build(part, rank, kHalo)) {
  config_.validate();
  catalog_.set_placer(std::move(placer));
  const grid::RankInfo& info = geom_.rank_info;
  domain_.ni = info.ni;
  domain_.nj = info.nj;
  domain_.nk = config_.npz;
  domain_.gi0 = info.i0;
  domain_.gj0 = info.j0;
  domain_.gni = part.n();
  domain_.gnj = part.n();

  const int ni = info.ni, nj = info.nj, nk = config_.npz;
  const HaloSpec hs{kHalo, kHalo};
  const FieldShape c3d(ni, nj, nk, hs);
  const FieldShape i3d(ni, nj, nk + 1, hs);
  const FieldShape p2d(ni, nj, 1, hs);

  // Prognostics.
  for (const char* name : {"u", "v", "w", "delp", "pt", "delz"}) catalog_.create(name, c3d);
  for (int t = 0; t < config_.ntracers; ++t) catalog_.create("q" + std::to_string(t), c3d);

  // Acoustic-step / remap intermediates.
  for (const char* name : kTransients) {
    const std::string n(name);
    catalog_.create(name, (n == "pem" || n == "fz") ? i3d : c3d);
  }
  catalog_.create("omga", c3d);

  // Interface (nk + 1) fields.
  for (const char* name : {"pe", "pk", "peln", "gz", "pe_ref"}) catalog_.create(name, i3d);

  // Vertical-coordinate coefficient fields, broadcast over the horizontal
  // (GT4Py has no K-only axis fields either; see DESIGN.md).
  catalog_.create("ak", i3d);
  catalog_.create("bk", i3d);

  // Surface fields.
  catalog_.create("ps", p2d);

  // Metric terms (copied so stencils can address them by name).
  for (const char* name : {"dx", "dy", "rdx", "rdy", "area", "rarea", "cosa", "sina", "fcor"}) {
    catalog_.create(name, p2d);
  }
  for (int j = -kHalo; j < nj + kHalo; ++j) {
    for (int i = -kHalo; i < ni + kHalo; ++i) {
      catalog_.at("dx")(i, j) = geom_.dx(i, j);
      catalog_.at("dy")(i, j) = geom_.dy(i, j);
      catalog_.at("rdx")(i, j) = 1.0 / geom_.dx(i, j);
      catalog_.at("rdy")(i, j) = 1.0 / geom_.dy(i, j);
      catalog_.at("area")(i, j) = geom_.area(i, j);
      catalog_.at("rarea")(i, j) = geom_.rarea(i, j);
      catalog_.at("cosa")(i, j) = geom_.cosa(i, j);
      catalog_.at("sina")(i, j) = geom_.sina(i, j);
      catalog_.at("fcor")(i, j) = geom_.fcor(i, j);
    }
  }

  // Hybrid vertical coordinate: pe_ref(k) = ak(k) + bk(k) * ps.
  for (int k = 0; k <= nk; ++k) {
    const double frac = static_cast<double>(k) / nk;
    const double bk = std::pow(frac, 1.2);
    const double ak = config_.ptop * (1.0 - bk);
    for (int j = -kHalo; j < nj + kHalo; ++j) {
      for (int i = -kHalo; i < ni + kHalo; ++i) {
        catalog_.at("ak")(i, j, k) = ak;
        catalog_.at("bk")(i, j, k) = bk;
      }
    }
  }
}

std::vector<std::string> ModelState::tracer_names() const {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(config_.ntracers));
  for (int t = 0; t < config_.ntracers; ++t) names.push_back("q" + std::to_string(t));
  return names;
}

std::vector<std::string> ModelState::prognostic_names(int ntracers) {
  std::vector<std::string> names = {"u", "v", "w", "delp", "pt", "delz"};
  for (int t = 0; t < ntracers; ++t) names.push_back("q" + std::to_string(t));
  return names;
}

void ModelState::register_meta(ir::Program& program) const {
  using ir::FieldKind;
  using ir::FieldMeta;
  for (const char* name : {"pe", "pk", "peln", "gz", "pe_ref", "ak", "bk"}) {
    program.set_field_meta(name, FieldMeta{FieldKind::Interface3D, false});
  }
  for (const char* name :
       {"ps", "dx", "dy", "rdx", "rdy", "area", "rarea", "cosa", "sina", "fcor"}) {
    program.set_field_meta(name, FieldMeta{FieldKind::Plane2D, false});
  }
  for (const char* name : kTransients) {
    FieldMeta meta;
    meta.transient = true;
    const std::string n(name);
    if (n == "pem" || n == "fz") meta.kind = FieldKind::Interface3D;
    program.set_field_meta(name, meta);
  }
}

}  // namespace cyclone::fv3
