#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/field/catalog.hpp"

namespace cyclone::fv3 {

/// Savepoint serialization — the paper's testing methodology (Sec. IV-A):
/// module inputs/outputs are serialized so every module can be validated
/// standalone against a reference, and regressions are caught by diffing
/// saved state. Files are a simple self-describing binary format.
class Savepoint {
 public:
  /// Capture a snapshot of the named fields (full allocation incl. halos).
  static Savepoint capture(const FieldCatalog& catalog,
                           const std::vector<std::string>& fields);

  /// Restore the snapshot into a catalog (shapes must match).
  void restore(FieldCatalog& catalog) const;

  /// Max |a - b| between this snapshot and the catalog's current fields.
  [[nodiscard]] double max_diff(const FieldCatalog& catalog) const;

  /// Binary round trip.
  void save(const std::string& path) const;
  static Savepoint load(const std::string& path);

  [[nodiscard]] const std::vector<std::string>& field_names() const { return names_; }

 private:
  struct Entry {
    int ni = 0, nj = 0, nk = 0, halo_i = 0, halo_j = 0;
    std::vector<double> data;  ///< compute domain + halos, i-fastest
  };
  std::vector<std::string> names_;
  std::map<std::string, Entry> entries_;
};

}  // namespace cyclone::fv3
