#pragma once

#include <map>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/field/catalog.hpp"

namespace cyclone::fv3 {

/// Savepoint serialization — the paper's testing methodology (Sec. IV-A):
/// module inputs/outputs are serialized so every module can be validated
/// standalone against a reference, and regressions are caught by diffing
/// saved state. Files are a simple self-describing binary format.
class Savepoint {
 public:
  /// Capture a snapshot of the named fields (full allocation incl. halos).
  static Savepoint capture(const FieldCatalog& catalog,
                           const std::vector<std::string>& fields);

  /// Capture every field of the catalog (checkpointing a whole rank).
  static Savepoint capture_all(const FieldCatalog& catalog);

  /// Restore the snapshot into a catalog (shapes must match).
  void restore(FieldCatalog& catalog) const;

  /// Max |a - b| between this snapshot and the catalog's current fields.
  [[nodiscard]] double max_diff(const FieldCatalog& catalog) const;

  /// Binary round trip.
  void save(const std::string& path) const;
  static Savepoint load(const std::string& path);

  [[nodiscard]] const std::vector<std::string>& field_names() const { return names_; }

 private:
  struct Entry {
    int ni = 0, nj = 0, nk = 0, halo_i = 0, halo_j = 0;
    std::vector<double> data;  ///< compute domain + halos, i-fastest
  };
  std::vector<std::string> names_;
  std::map<std::string, Entry> entries_;
};

/// Checkpoint store for the self-healing runtime backed by the savepoint
/// layer: each checkpoint is one Savepoint per rank (full allocation, halos
/// included), so rollback-restart reuses exactly the snapshot/restore code
/// the module-validation harness trusts. With a non-empty directory every
/// checkpoint is also mirrored to `ckpt_r<rank>.sav` files — the stand-in
/// for writing to a burst buffer; restore always reads the in-memory copy.
class SavepointStore : public comm::CheckpointStore {
 public:
  explicit SavepointStore(std::string directory = "") : dir_(std::move(directory)) {}

  void save(long step, const std::vector<comm::RankDomain>& ranks) override;
  long restore(std::vector<comm::RankDomain>& ranks) override;

  [[nodiscard]] long saves() const { return saves_; }
  [[nodiscard]] long restores() const { return restores_; }
  [[nodiscard]] long checkpoint_step() const { return step_; }

 private:
  std::string dir_;
  long step_ = -1;
  std::vector<Savepoint> snaps_;  ///< one per rank
  long saves_ = 0;
  long restores_ = 0;
};

}  // namespace cyclone::fv3
