#include "fv3/driver.hpp"

#include <algorithm>
#include <cmath>

namespace cyclone::fv3 {

bool GlobalDiagnostics::finite() const {
  for (double v : {total_mass, tracer_mass_q0, max_wind, max_w, mean_pt}) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

DistributedModel::DistributedModel(const FvConfig& config, int num_ranks,
                                   const DycoreSchedules& schedules)
    : config_(config),
      part_(grid::Partitioner::for_ranks(config.npx, num_ranks)),
      comm_(part_.num_ranks()),
      halo_(part_, 3) {
  for (int r = 0; r < part_.num_ranks(); ++r) {
    states_.push_back(std::make_unique<ModelState>(config_, part_, r));
  }
  program_ = build_dycore_program(*states_[0], schedules);
}

void DistributedModel::run_halo_node(const ir::SNode& node) {
  if (node.halo_vector) {
    CY_REQUIRE_MSG(node.halo_fields.size() % 2 == 0,
                   "vector halo exchange needs (u, v) pairs");
    for (size_t p = 0; p < node.halo_fields.size(); p += 2) {
      std::vector<FieldD*> u, v;
      u.reserve(states_.size());
      v.reserve(states_.size());
      for (auto& st : states_) {
        u.push_back(&st->f(node.halo_fields[p]));
        v.push_back(&st->f(node.halo_fields[p + 1]));
      }
      halo_.exchange_vector(u, v, comm_);
      halo_.fill_cube_corners(u, comm::CornerFill::XDir);
      halo_.fill_cube_corners(v, comm::CornerFill::YDir);
    }
    return;
  }
  // Scalars of one exchange node travel coalesced: one message per
  // neighbor pair for the whole group (FV3's grouped halo updates).
  std::vector<std::vector<FieldD*>> groups;
  for (const auto& name : node.halo_fields) {
    std::vector<FieldD*> fields;
    fields.reserve(states_.size());
    for (auto& st : states_) fields.push_back(&st->f(name));
    groups.push_back(std::move(fields));
  }
  if (groups.size() == 1) {
    halo_.exchange_scalar(groups[0], comm_);
  } else {
    halo_.exchange_group(groups, comm_);
  }
  for (auto& fields : groups) halo_.fill_cube_corners(fields, comm::CornerFill::XDir);
}

void DistributedModel::step() {
  const auto order = program_.flatten_execution_order();
  for (int sidx : order) {
    const ir::State& st = program_.states()[static_cast<size_t>(sidx)];
    const bool halo_only =
        !st.nodes.empty() && std::all_of(st.nodes.begin(), st.nodes.end(), [](const ir::SNode& n) {
          return n.kind == ir::SNode::Kind::HaloExchange;
        });
    if (halo_only) {
      for (const auto& node : st.nodes) run_halo_node(node);
      continue;
    }
    for (auto& state : states_) {
      program_.execute_state(sidx, state->catalog(), state->domain());
    }
  }
}

void DistributedModel::exchange_prognostics() {
  const auto progs = ModelState::prognostic_names(config_.ntracers);
  // Winds go as a rotated vector pair, the rest as scalars.
  {
    std::vector<FieldD*> u, v;
    for (auto& st : states_) {
      u.push_back(&st->f("u"));
      v.push_back(&st->f("v"));
    }
    halo_.exchange_vector(u, v, comm_);
    halo_.fill_cube_corners(u, comm::CornerFill::XDir);
    halo_.fill_cube_corners(v, comm::CornerFill::YDir);
  }
  for (const auto& name : progs) {
    if (name == "u" || name == "v") continue;
    std::vector<FieldD*> fields;
    for (auto& st : states_) fields.push_back(&st->f(name));
    halo_.exchange_scalar(fields, comm_);
    halo_.fill_cube_corners(fields, comm::CornerFill::XDir);
  }
}

GlobalDiagnostics DistributedModel::diagnostics() const {
  GlobalDiagnostics d;
  double pt_sum = 0;
  long pt_count = 0;
  for (const auto& st : states_) {
    const auto& dom = st->domain();
    const FieldD& delp = st->f("delp");
    const FieldD& area = st->f("area");
    const FieldD& u = st->f("u");
    const FieldD& v = st->f("v");
    const FieldD& w = st->f("w");
    const FieldD& pt = st->f("pt");
    const bool has_q0 = config_.ntracers > 0;
    for (int k = 0; k < dom.nk; ++k) {
      for (int j = 0; j < dom.nj; ++j) {
        for (int i = 0; i < dom.ni; ++i) {
          const double cell = delp(i, j, k) * area(i, j, 0);
          d.total_mass += cell;
          if (has_q0) d.tracer_mass_q0 += st->f("q0")(i, j, k) * cell;
          d.max_wind = std::max({d.max_wind, std::abs(u(i, j, k)), std::abs(v(i, j, k))});
          d.max_w = std::max(d.max_w, std::abs(w(i, j, k)));
          pt_sum += pt(i, j, k);
          ++pt_count;
        }
      }
    }
  }
  d.mean_pt = pt_count ? pt_sum / static_cast<double>(pt_count) : 0.0;
  return d;
}

}  // namespace cyclone::fv3
