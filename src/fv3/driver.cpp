#include "fv3/driver.hpp"

#include <algorithm>
#include <cmath>

#include "fv3/serialization.hpp"

namespace cyclone::fv3 {

bool GlobalDiagnostics::finite() const {
  for (double v : {total_mass, tracer_mass_q0, max_wind, max_w, mean_pt}) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

DistributedModel::DistributedModel(const FvConfig& config, int num_ranks,
                                   const DycoreSchedules& schedules,
                                   const std::function<FieldPlacer(int rank)>& placers)
    : config_(config),
      part_(grid::Partitioner::for_ranks(config.npx, num_ranks)),
      comm_(part_.num_ranks()),
      halo_(part_, 3) {
  for (int r = 0; r < part_.num_ranks(); ++r) {
    states_.push_back(
        std::make_unique<ModelState>(config_, part_, r, placers ? placers(r) : FieldPlacer{}));
  }
  program_ = build_dycore_program(*states_[0], schedules);
}

std::vector<comm::RankDomain> DistributedModel::rank_domains() {
  std::vector<comm::RankDomain> ranks;
  ranks.reserve(states_.size());
  for (auto& st : states_) ranks.push_back(comm::RankDomain{&st->catalog(), st->domain()});
  return ranks;
}

void DistributedModel::set_run_options(const exec::RunOptions& run) {
  program_.set_run_options(run);
  runtime_.reset();  // per-rank program copies carry stale options
}

void DistributedModel::set_exec_mode(ExecMode mode) { exec_mode_ = mode; }

void DistributedModel::set_runtime_options(const comm::RuntimeOptions& options) {
  runtime_options_ = options;
  runtime_.reset();
}

comm::ConcurrentRuntime& DistributedModel::concurrent_runtime() {
  if (!runtime_) {
    comm::RuntimeOptions options = runtime_options_;
    options.run = program_.run_options();
    runtime_ = std::make_unique<comm::ConcurrentRuntime>(program_, halo_, rank_domains(),
                                                         options);
  }
  return *runtime_;
}

comm::RunReport DistributedModel::run_resilient(int steps) {
  set_exec_mode(ExecMode::Concurrent);
  comm::ConcurrentRuntime& rt = concurrent_runtime();
  // Checkpoint through the savepoint serialization layer unless the caller
  // supplied a store. The store only needs to outlive the (synchronous) run.
  SavepointStore store;
  comm::RecoveryOptions recovery = rt.options().recovery;
  recovery.enabled = true;
  if (!recovery.store) recovery.store = &store;
  rt.set_fault_options(rt.options().faults, recovery);
  return rt.run(steps);
}

void DistributedModel::step() {
  if (exec_mode_ == ExecMode::Concurrent) {
    concurrent_runtime().step();
    return;
  }
  auto ranks = rank_domains();
  comm::run_lockstep_step(program_, halo_, ranks, comm_);
}

void DistributedModel::exchange_prognostics() {
  const auto progs = ModelState::prognostic_names(config_.ntracers);
  // Winds go as a rotated vector pair, the rest as scalars.
  {
    std::vector<FieldD*> u, v;
    for (auto& st : states_) {
      u.push_back(&st->f("u"));
      v.push_back(&st->f("v"));
    }
    halo_.exchange_vector(u, v, comm_);
    halo_.fill_cube_corners(u, comm::CornerFill::XDir);
    halo_.fill_cube_corners(v, comm::CornerFill::YDir);
  }
  for (const auto& name : progs) {
    if (name == "u" || name == "v") continue;
    std::vector<FieldD*> fields;
    for (auto& st : states_) fields.push_back(&st->f(name));
    halo_.exchange_scalar(fields, comm_);
    halo_.fill_cube_corners(fields, comm::CornerFill::XDir);
  }
}

GlobalDiagnostics DistributedModel::diagnostics() const {
  GlobalDiagnostics d;
  double pt_sum = 0;
  long pt_count = 0;
  for (const auto& st : states_) {
    const auto& dom = st->domain();
    const FieldD& delp = st->f("delp");
    const FieldD& area = st->f("area");
    const FieldD& u = st->f("u");
    const FieldD& v = st->f("v");
    const FieldD& w = st->f("w");
    const FieldD& pt = st->f("pt");
    const bool has_q0 = config_.ntracers > 0;
    for (int k = 0; k < dom.nk; ++k) {
      for (int j = 0; j < dom.nj; ++j) {
        for (int i = 0; i < dom.ni; ++i) {
          const double cell = delp(i, j, k) * area(i, j, 0);
          d.total_mass += cell;
          if (has_q0) d.tracer_mass_q0 += st->f("q0")(i, j, k) * cell;
          d.max_wind = std::max({d.max_wind, std::abs(u(i, j, k)), std::abs(v(i, j, k))});
          d.max_w = std::max(d.max_w, std::abs(w(i, j, k)));
          pt_sum += pt(i, j, k);
          ++pt_count;
        }
      }
    }
  }
  d.mean_pt = pt_count ? pt_sum / static_cast<double>(pt_count) : 0.0;
  return d;
}

}  // namespace cyclone::fv3
