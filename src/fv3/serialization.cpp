#include "fv3/serialization.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "core/util/error.hpp"

namespace cyclone::fv3 {

namespace {
constexpr uint64_t kMagic = 0x43594353415645ull;  // "CYCSAVE"
}

Savepoint Savepoint::capture(const FieldCatalog& catalog,
                             const std::vector<std::string>& fields) {
  Savepoint sp;
  for (const auto& name : fields) {
    const FieldD& f = catalog.at(name);
    const FieldShape& sh = f.shape();
    Entry e;
    e.ni = sh.ni();
    e.nj = sh.nj();
    e.nk = sh.nk();
    e.halo_i = sh.halo().i;
    e.halo_j = sh.halo().j;
    e.data.reserve(sh.volume_with_halo());
    for (int k = 0; k < e.nk; ++k) {
      for (int j = -e.halo_j; j < e.nj + e.halo_j; ++j) {
        for (int i = -e.halo_i; i < e.ni + e.halo_i; ++i) e.data.push_back(f(i, j, k));
      }
    }
    sp.names_.push_back(name);
    sp.entries_[name] = std::move(e);
  }
  return sp;
}

Savepoint Savepoint::capture_all(const FieldCatalog& catalog) {
  return capture(catalog, catalog.names());
}

void Savepoint::restore(FieldCatalog& catalog) const {
  for (const auto& name : names_) {
    const Entry& e = entries_.at(name);
    FieldD& f = catalog.at(name);
    const FieldShape& sh = f.shape();
    CY_REQUIRE_MSG(sh.ni() == e.ni && sh.nj() == e.nj && sh.nk() == e.nk &&
                       sh.halo().i == e.halo_i && sh.halo().j == e.halo_j,
                   "savepoint shape mismatch for field '" << name << "'");
    size_t idx = 0;
    for (int k = 0; k < e.nk; ++k) {
      for (int j = -e.halo_j; j < e.nj + e.halo_j; ++j) {
        for (int i = -e.halo_i; i < e.ni + e.halo_i; ++i) f(i, j, k) = e.data[idx++];
      }
    }
  }
}

double Savepoint::max_diff(const FieldCatalog& catalog) const {
  double m = 0;
  for (const auto& name : names_) {
    const Entry& e = entries_.at(name);
    const FieldD& f = catalog.at(name);
    size_t idx = 0;
    for (int k = 0; k < e.nk; ++k) {
      for (int j = -e.halo_j; j < e.nj + e.halo_j; ++j) {
        for (int i = -e.halo_i; i < e.ni + e.halo_i; ++i) {
          m = std::max(m, std::abs(f(i, j, k) - e.data[idx++]));
        }
      }
    }
  }
  return m;
}

void Savepoint::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  CY_REQUIRE_MSG(out.good(), "cannot open '" << path << "' for writing");
  auto put_u64 = [&](uint64_t v) { out.write(reinterpret_cast<const char*>(&v), 8); };
  put_u64(kMagic);
  put_u64(names_.size());
  for (const auto& name : names_) {
    const Entry& e = entries_.at(name);
    put_u64(name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    for (int v : {e.ni, e.nj, e.nk, e.halo_i, e.halo_j}) put_u64(static_cast<uint64_t>(v));
    put_u64(e.data.size());
    out.write(reinterpret_cast<const char*>(e.data.data()),
              static_cast<std::streamsize>(e.data.size() * sizeof(double)));
  }
  CY_ENSURE_MSG(out.good(), "short write to '" << path << "'");
}

Savepoint Savepoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CY_REQUIRE_MSG(in.good(), "cannot open '" << path << "' for reading");
  auto get_u64 = [&] {
    uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), 8);
    return v;
  };
  CY_REQUIRE_MSG(get_u64() == kMagic, "'" << path << "' is not a cyclone savepoint");
  Savepoint sp;
  const uint64_t count = get_u64();
  for (uint64_t f = 0; f < count; ++f) {
    const uint64_t name_len = get_u64();
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    Entry e;
    e.ni = static_cast<int>(get_u64());
    e.nj = static_cast<int>(get_u64());
    e.nk = static_cast<int>(get_u64());
    e.halo_i = static_cast<int>(get_u64());
    e.halo_j = static_cast<int>(get_u64());
    e.data.resize(get_u64());
    in.read(reinterpret_cast<char*>(e.data.data()),
            static_cast<std::streamsize>(e.data.size() * sizeof(double)));
    sp.names_.push_back(name);
    sp.entries_[name] = std::move(e);
  }
  CY_ENSURE_MSG(in.good(), "truncated savepoint '" << path << "'");
  return sp;
}

void SavepointStore::save(long step, const std::vector<comm::RankDomain>& ranks) {
  step_ = step;
  snaps_.clear();
  snaps_.reserve(ranks.size());
  for (const auto& rd : ranks) snaps_.push_back(Savepoint::capture_all(*rd.catalog));
  if (!dir_.empty()) {
    for (size_t r = 0; r < snaps_.size(); ++r) {
      snaps_[r].save(dir_ + "/ckpt_r" + std::to_string(r) + ".sav");
    }
  }
  ++saves_;
}

long SavepointStore::restore(std::vector<comm::RankDomain>& ranks) {
  CY_REQUIRE_MSG(!snaps_.empty(), "no checkpoint to restore");
  CY_REQUIRE_MSG(snaps_.size() == ranks.size(), "checkpoint rank count mismatch");
  for (size_t r = 0; r < ranks.size(); ++r) snaps_[r].restore(*ranks[r].catalog);
  ++restores_;
  return step_;
}

}  // namespace cyclone::fv3
