#include "fv3/dyn_core.hpp"

#include "fv3/stencils/c_sw.hpp"
#include "fv3/stencils/damping.hpp"
#include "fv3/stencils/d_sw.hpp"
#include "fv3/stencils/fv_tp2d.hpp"
#include "fv3/stencils/pressure.hpp"
#include "fv3/stencils/remap.hpp"
#include "fv3/stencils/riem_solver.hpp"
#include "fv3/stencils/tracer.hpp"
#include "fv3/stencils/update_dz.hpp"

namespace cyclone::fv3 {

namespace {

ir::CFNode halo_state(ir::Program& program, const std::string& name,
                      std::vector<std::string> scalars, bool with_winds) {
  ir::State st{name, {}};
  if (with_winds) {
    st.nodes.push_back(ir::SNode::make_halo_exchange(name + ".uv", {"u", "v"}, 3, true));
  }
  if (!scalars.empty()) {
    st.nodes.push_back(ir::SNode::make_halo_exchange(name + ".scalars", std::move(scalars), 3));
  }
  return ir::CFNode::state_ref(program.add_state(std::move(st)));
}

}  // namespace

std::vector<ir::CFNode> build_acoustic_states(ir::Program& program, const FvConfig& config,
                                              const DycoreSchedules& schedules) {
  const double dta = config.dt_acoustic();
  std::vector<ir::CFNode> seq;

  // Communication point before the C-grid half step (Fig. 2).
  seq.push_back(halo_state(program, "halo_pre_c", {"delp", "pt", "w", "delz"}, true));

  seq.push_back(ir::CFNode::state_ref(
      program.add_state(ir::State{"c_sw", c_sw_nodes(config, dta, schedules.horizontal)})));

  seq.push_back(ir::CFNode::state_ref(program.add_state(ir::State{
      "riem_solver_c",
      riem_solver_nodes(config, dta, schedules.vertical, "riem_solver_c", "wc")})));

  // The solved pressure perturbation is differentiated horizontally next.
  seq.push_back(halo_state(program, "halo_pp", {"pp"}, false));

  seq.push_back(ir::CFNode::state_ref(program.add_state(ir::State{
      "pressure", pressure_nodes(config, schedules.vertical, schedules.horizontal)})));

  seq.push_back(ir::CFNode::state_ref(program.add_state(
      ir::State{"nh_p_grad", {nh_p_grad_node(config, dta, schedules.horizontal)}})));

  // The pressure-gradient force touched the winds; refresh their halos
  // before the D-grid step consumes them at offsets (Fig. 2 comm point).
  seq.push_back(halo_state(program, "halo_uv_d", {"w"}, true));

  seq.push_back(ir::CFNode::state_ref(
      program.add_state(ir::State{"d_sw", d_sw_nodes(config, dta, schedules.horizontal)})));

  seq.push_back(ir::CFNode::state_ref(program.add_state(
      ir::State{"update_dz", {update_dz_node(config, dta, schedules.horizontal)}})));

  if (config.do_riem_solver3) {
    // Second (D-grid) Riemann solve — the module whose near-duplication the
    // paper's Sec. IV-D concessions discuss.
    seq.push_back(ir::CFNode::state_ref(program.add_state(ir::State{
        "riem_solver3",
        riem_solver_nodes(config, dta, schedules.vertical, "riem_solver3")})));
  }

  return seq;
}

std::vector<ir::CFNode> build_remap_step_states(ir::Program& program, const FvConfig& config,
                                                const DycoreSchedules& schedules) {
  std::vector<ir::CFNode> seq;

  // Tracer transport (sub-cycled; red hexagon in Fig. 2). Courant numbers
  // are reused from the last acoustic step's d_sw.
  std::vector<std::string> tracers;
  for (int t = 0; t < config.ntracers; ++t) tracers.push_back("q" + std::to_string(t));
  if (!tracers.empty()) {
    // delp's halo went stale during the acoustic loop; the mass-weighted
    // transport needs it alongside the tracers.
    std::vector<std::string> exchange = tracers;
    exchange.push_back("delp");
    seq.push_back(halo_state(program, "halo_tracers", std::move(exchange), false));
    seq.push_back(ir::CFNode::state_ref(program.add_state(
        ir::State{"tracer_2d", tracer_2d_nodes(config, schedules.horizontal)})));
  }

  // Tracer hygiene: vertical positivity filling and optional horizontal
  // diffusion (FV3's fillz / del2_cubed).
  if (config.ntracers > 0 && config.do_fillz) {
    seq.push_back(ir::CFNode::state_ref(
        program.add_state(ir::State{"fillz", fillz_nodes(config, schedules.vertical)})));
  }
  if (config.ntracers > 0 && config.tracer_diffusion > 0.0) {
    seq.push_back(ir::CFNode::state_ref(program.add_state(ir::State{
        "del2_cubed", del2_cubed_nodes(config, config.tracer_diffusion,
                                       config.tracer_diffusion_ntimes,
                                       schedules.horizontal)})));
  }

  // Vertical remapping (green hexagon).
  seq.push_back(ir::CFNode::state_ref(
      program.add_state(ir::State{"remap", remap_nodes(config, schedules.vertical)})));

  // Sponge-layer Rayleigh damping at the model top (Fig. 2).
  seq.push_back(ir::CFNode::state_ref(program.add_state(ir::State{
      "rayleigh_damping",
      {rayleigh_damping_node(config, config.dt_remap(), schedules.horizontal)}})));
  return seq;
}

ir::Program build_dycore_program(const ModelState& state, const DycoreSchedules& schedules) {
  const FvConfig& config = state.config();
  ir::Program program("fv3_dycore");
  state.register_meta(program);

  std::vector<ir::CFNode> remap_body;
  {
    auto acoustic = build_acoustic_states(program, config, schedules);
    remap_body.push_back(ir::CFNode::loop("n_split", config.n_split, std::move(acoustic)));
  }
  {
    auto tail = build_remap_step_states(program, config, schedules);
    remap_body.insert(remap_body.end(), tail.begin(), tail.end());
  }
  program.control_flow().children.push_back(
      ir::CFNode::loop("k_split", config.k_split, std::move(remap_body)));
  return program;
}

}  // namespace cyclone::fv3
