#pragma once

#include <string>
#include <vector>

#include "fv3/driver.hpp"

namespace cyclone::fv3 {

/// Cubed-to-lat-lon diagnostics (FV3's c2l): projects the grid-local wind
/// components onto east/north unit vectors and samples any field onto a
/// regular latitude-longitude raster — the post-processing step the paper's
/// Python-interoperability argument is about (Sec. II-B). Also powers the
/// in-situ "visualization callback" example.
struct LatLonGrid {
  int nlat = 0;
  int nlon = 0;
  std::vector<double> values;  ///< row-major [lat][lon]

  [[nodiscard]] double& at(int lat, int lon) {
    return values[static_cast<size_t>(lat) * nlon + lon];
  }
  [[nodiscard]] double at(int lat, int lon) const {
    return values[static_cast<size_t>(lat) * nlon + lon];
  }
};

/// Convert a rank's grid-local wind components to (east, north) at every
/// interior cell, writing into the provided fields.
void winds_to_earth(const ModelState& state, const grid::Partitioner& part, int level,
                    FieldD& u_east, FieldD& v_north);

/// Sample one level of a named field of a distributed model onto an
/// nlat x nlon raster (nearest cubed-sphere cell per raster point).
LatLonGrid sample_latlon(DistributedModel& model, const std::string& field, int level,
                         int nlat, int nlon);

/// Render a raster as an ASCII contour map (for terminal visualization /
/// the callback example). `levels` characters map the value range.
std::string ascii_map(const LatLonGrid& grid, const std::string& levels = " .:-=+*#%@");

}  // namespace cyclone::fv3
