#include "fv3/latlon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "grid/cube_topology.hpp"

namespace cyclone::fv3 {

namespace {

using Vec3 = std::array<double, 3>;

Vec3 norm3(Vec3 v) {
  const double m = std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
  return {v[0] / m, v[1] / m, v[2] / m};
}

void grid_basis(int tile, double ic, double jc, int n, Vec3& ei, Vec3& ej) {
  constexpr double kH = 1e-4;
  const Vec3 p0 = grid::cell_center_xyz(tile, ic, jc, n);
  const Vec3 pi = grid::cell_center_xyz(tile, ic + kH, jc, n);
  const Vec3 pj = grid::cell_center_xyz(tile, ic, jc + kH, n);
  ei = norm3({pi[0] - p0[0], pi[1] - p0[1], pi[2] - p0[2]});
  ej = norm3({pj[0] - p0[0], pj[1] - p0[1], pj[2] - p0[2]});
}

}  // namespace

void winds_to_earth(const ModelState& state, const grid::Partitioner& part, int level,
                    FieldD& u_east, FieldD& v_north) {
  const grid::RankInfo& info = state.geometry().rank_info;
  const FieldD& u = state.f("u");
  const FieldD& v = state.f("v");
  const int n = part.n();
  for (int j = 0; j < info.nj; ++j) {
    for (int i = 0; i < info.ni; ++i) {
      const double ic = info.i0 + i, jc = info.j0 + j;
      Vec3 ei, ej;
      grid_basis(info.tile, ic, jc, n, ei, ej);
      const Vec3 wind = {u(i, j, level) * ei[0] + v(i, j, level) * ej[0],
                         u(i, j, level) * ei[1] + v(i, j, level) * ej[1],
                         u(i, j, level) * ei[2] + v(i, j, level) * ej[2]};
      const grid::LatLon ll = grid::cell_center_latlon(info.tile, ic, jc, n);
      const Vec3 east = {-std::sin(ll.lon), std::cos(ll.lon), 0.0};
      const Vec3 north = {-std::sin(ll.lat) * std::cos(ll.lon),
                          -std::sin(ll.lat) * std::sin(ll.lon), std::cos(ll.lat)};
      u_east(i, j, 0) = wind[0] * east[0] + wind[1] * east[1] + wind[2] * east[2];
      v_north(i, j, 0) = wind[0] * north[0] + wind[1] * north[1] + wind[2] * north[2];
    }
  }
}

LatLonGrid sample_latlon(DistributedModel& model, const std::string& field, int level,
                         int nlat, int nlon) {
  LatLonGrid out;
  out.nlat = nlat;
  out.nlon = nlon;
  out.values.assign(static_cast<size_t>(nlat) * nlon, 0.0);

  const grid::Partitioner& part = model.partitioner();
  const int n = part.n();
  for (int la = 0; la < nlat; ++la) {
    const double lat = -M_PI / 2 + (la + 0.5) * M_PI / nlat;
    for (int lo = 0; lo < nlon; ++lo) {
      const double lon = -M_PI + (lo + 0.5) * 2.0 * M_PI / nlon;
      // Direction -> owning face -> nearest cell.
      const Vec3 p = {std::cos(lat) * std::cos(lon), std::cos(lat) * std::sin(lon),
                      std::sin(lat)};
      const grid::FacePoint fp = grid::xyz_to_face(p);
      const int ci = std::clamp(static_cast<int>(std::floor((fp.a + 1.0) * n / 2.0)), 0, n - 1);
      const int cj = std::clamp(static_cast<int>(std::floor((fp.b + 1.0) * n / 2.0)), 0, n - 1);
      const int rank = part.owner(fp.face, ci, cj);
      const grid::RankInfo info = part.info(rank);
      out.at(la, lo) =
          model.state(rank).f(field)(ci - info.i0, cj - info.j0, level);
    }
  }
  return out;
}

std::string ascii_map(const LatLonGrid& grid, const std::string& levels) {
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (double v : grid.values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  std::ostringstream os;
  // Print north at the top.
  for (int la = grid.nlat - 1; la >= 0; --la) {
    for (int lo_idx = 0; lo_idx < grid.nlon; ++lo_idx) {
      const double t = (grid.at(la, lo_idx) - lo) / span;
      const size_t idx = std::min(levels.size() - 1,
                                  static_cast<size_t>(t * static_cast<double>(levels.size())));
      os << levels[idx];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cyclone::fv3
