// corpus_runner: record or verify the golden-file scenario corpus.
//
//   corpus_runner --list
//   corpus_runner --record [--scenario NAME]... [--corpus-dir DIR]
//   corpus_runner --verify [--scenario NAME]... [--backends CSV]
//                 [--corpus-dir DIR] [--no-unreferenced-check]
//
// Exit codes: 0 success, 1 verification mismatch, 2 usage error.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/verify/corpus.hpp"
#include "corpus/scenarios.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: corpus_runner (--list | --record | --verify)\n"
               "  --scenario NAME   restrict to one scenario (repeatable)\n"
               "  --backends CSV    verify only these backends "
               "(interp,tape,openmp,jit,concurrent6,concurrent24,chaos)\n"
               "  --corpus-dir DIR  golden-file directory "
               "(default: $CYCLONE_CORPUS_DIR or <source>/tests/corpus)\n"
               "  --no-unreferenced-check  allow .gold files absent from the registry\n");
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item = csv.substr(start, comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cyclone;

  enum class Mode { None, List, Record, Verify };
  Mode mode = Mode::None;
  verify::CorpusOptions options;
  options.dir = corpus::default_corpus_dir();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "corpus_runner: %s needs a value\n", flag);
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      mode = Mode::List;
    } else if (arg == "--record") {
      mode = Mode::Record;
    } else if (arg == "--verify") {
      mode = Mode::Verify;
    } else if (arg == "--scenario") {
      options.filter.push_back(next("--scenario"));
    } else if (arg == "--backends") {
      options.backends = split_csv(next("--backends"));
    } else if (arg == "--corpus-dir") {
      options.dir = next("--corpus-dir");
    } else if (arg == "--no-unreferenced-check") {
      options.check_unreferenced = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "corpus_runner: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (mode == Mode::None) {
    usage();
    return 2;
  }

  const std::vector<verify::Scenario> registry = corpus::standard_scenarios();

  if (mode == Mode::List) {
    for (const auto& sc : registry) {
      std::printf("%-24s core=%-6s ic=%-7s grid=%-7s steps=%d tracers=%d\n", sc.name.c_str(),
                  sc.core.c_str(), sc.ic.c_str(), sc.grid.c_str(), sc.steps, sc.tracers);
    }
    return 0;
  }

  try {
    if (mode == Mode::Record) {
      const int written = verify::record_corpus(registry, options);
      std::printf("recorded %d golden file(s) into %s\n", written, options.dir.c_str());
      return 0;
    }

    const verify::CorpusReport report = verify::check_corpus(registry, options);
    std::printf("%s\n", report.summary().c_str());
    return report.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "corpus_runner: %s\n", e.what());
    return 2;
  }
}
