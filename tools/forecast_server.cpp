// Async forecast service front-end: a unix-domain-socket server wrapping
// ensemble::ForecastService plus a line-protocol client. One process serves
// many clients; concurrent compatible requests coalesce into one batched
// ensemble run, and each client streams back its members' assembled
// prognostic fields (checksum + probe samples — the golden-file record
// shape, so a served forecast is directly comparable to a committed
// golden).
//
//   forecast_server serve   --socket /tmp/cyclone.sock [--ranks 6]
//                           [--workers 1] [--max-batch 32] [--chaos-rate R]
//   forecast_server request --socket /tmp/cyclone.sock core=swe ic=hill \
//                           npx=12 ntracers=2 members=4 seed=7 steps=2 \
//                           backend=openmp [chaos=1] [--golden NAME] [--quiet]
//   forecast_server stats   --socket /tmp/cyclone.sock
//   forecast_server shutdown --socket /tmp/cyclone.sock

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/scenarios.hpp"
#include "ensemble/service.hpp"

namespace {

using namespace cyclone;
using ensemble::ForecastRequest;
using ensemble::ForecastResult;
using ensemble::ForecastService;

// --- Line framing over a stream socket --------------------------------------

bool send_line(int fd, const std::string& line) {
  std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + sent, framed.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Read one newline-terminated line (buffered per call; commands are small).
bool recv_line(int fd, std::string& line, std::string& buffer) {
  for (;;) {
    const size_t pos = buffer.find('\n');
    if (pos != std::string::npos) {
      line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

// --- key=value command parsing ----------------------------------------------

std::map<std::string, std::string> parse_kv(const std::vector<std::string>& tokens) {
  std::map<std::string, std::string> kv;
  for (const std::string& token : tokens) {
    const size_t eq = token.find('=');
    if (eq != std::string::npos) kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

bool parse_request(const std::map<std::string, std::string>& kv, ForecastRequest& request,
                   std::string& error) {
  auto get = [&kv](const char* key, const std::string& fallback) {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  };
  try {
    request.core = get("core", request.core);
    request.ic = get("ic", request.ic);
    request.npx = std::stoi(get("npx", std::to_string(request.npx)));
    request.npz = std::stoi(get("npz", std::to_string(request.npz)));
    request.ntracers = std::stoi(get("ntracers", std::to_string(request.ntracers)));
    request.members = std::stoi(get("members", std::to_string(request.members)));
    request.seed = std::stoull(get("seed", std::to_string(request.seed)), nullptr, 0);
    request.steps = std::stoi(get("steps", std::to_string(request.steps)));
    request.chaos = std::stoi(get("chaos", request.chaos ? "1" : "0")) != 0;
    const std::string backend = get("backend", "openmp");
    if (!exec::parse_backend(backend, request.backend)) {
      error = "unknown backend '" + backend + "'";
      return false;
    }
  } catch (const std::exception&) {
    error = "malformed numeric argument";
    return false;
  }
  return true;
}

std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// --- Server -----------------------------------------------------------------

struct ServerState {
  ForecastService* service = nullptr;
  std::atomic<bool> stopping{false};
  int listen_fd = -1;
};

void stream_result(int fd, const ForecastResult& result) {
  if (result.ok) {
    for (const ensemble::MemberForecast& member : result.members) {
      std::ostringstream head;
      head << "member index=" << member.spec.index << " seed=" << member.spec.seed;
      if (!send_line(fd, head.str())) return;
      for (const verify::GoldenField& field : member.fields) {
        std::ostringstream line;
        line << "field name=" << field.name << " tiles=" << field.tiles << " ni=" << field.ni
             << " nj=" << field.nj << " nk=" << field.nk
             << " checksum=" << hex64(field.checksum) << " samples=";
        for (size_t s = 0; s < field.samples.size(); ++s) {
          if (s) line << ',';
          line << hex64(field.samples[s]);
        }
        if (!send_line(fd, line.str())) return;
      }
    }
  }
  std::ostringstream done;
  done << "done ok=" << (result.ok ? 1 : 0) << " latency_ms=" << result.latency_seconds * 1e3
       << " queue_ms=" << result.queue_seconds * 1e3 << " run_ms=" << result.run_seconds * 1e3
       << " batch_members=" << result.batch_members
       << " coalesced_requests=" << result.coalesced_requests
       << " restarts=" << result.report.restarts << " sequence=" << result.sequence;
  if (!result.ok) done << " error=" << result.error;  // error text ends the line
  send_line(fd, done.str());
}

void handle_connection(ServerState& state, int fd) {
  std::string line, buffer;
  if (recv_line(fd, line, buffer)) {
    std::istringstream iss(line);
    std::string command;
    iss >> command;
    std::vector<std::string> tokens;
    for (std::string t; iss >> t;) tokens.push_back(t);
    if (command == "forecast") {
      ForecastRequest request;
      std::string error;
      if (!parse_request(parse_kv(tokens), request, error)) {
        send_line(fd, "done ok=0 error=" + error);
      } else {
        ForecastService::Ticket ticket = state.service->submit(request);
        stream_result(fd, ticket.result.get());
      }
    } else if (command == "stats") {
      const ensemble::ServiceStats s = state.service->stats();
      std::ostringstream json;
      json << "{\"submitted\": " << s.submitted << ", \"completed\": " << s.completed
           << ", \"cancelled\": " << s.cancelled << ", \"failed\": " << s.failed
           << ", \"batches\": " << s.batches
           << ", \"coalesced_requests\": " << s.coalesced_requests
           << ", \"member_steps\": " << s.member_steps << ", \"busy_seconds\": " << s.busy_seconds
           << "}";
      send_line(fd, json.str());
    } else if (command == "shutdown") {
      state.stopping.store(true);
      ::shutdown(state.listen_fd, SHUT_RDWR);  // breaks the accept loop
      send_line(fd, "ok shutting down");
    } else {
      send_line(fd, "done ok=0 error=unknown command '" + command + "'");
    }
  }
  ::close(fd);
}

int serve(const std::string& socket_path, ForecastService::Options options) {
  ForecastService service(options);
  ServerState state;
  state.service = &service;

  state.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (state.listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  ::unlink(socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long\n");
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(state.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("bind");
    return 1;
  }
  if (::listen(state.listen_fd, 16) != 0) {
    std::perror("listen");
    return 1;
  }
  std::printf("forecast_server listening on %s (ranks=%d workers=%d max_batch=%d)\n",
              socket_path.c_str(), options.num_ranks, options.workers,
              options.max_batch_members);
  std::fflush(stdout);

  std::vector<std::thread> connections;
  while (!state.stopping.load()) {
    const int fd = ::accept(state.listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener shut down (or fatal error) — stop accepting
    connections.emplace_back([&state, fd] { handle_connection(state, fd); });
  }
  for (std::thread& t : connections) t.join();
  ::close(state.listen_fd);
  ::unlink(socket_path.c_str());
  std::printf("forecast_server: clean shutdown\n");
  return 0;
}

// --- Client -----------------------------------------------------------------

int connect_to(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct StreamedField {
  int member = -1;
  verify::GoldenField field;
};

/// Run one request, printing the stream; returns 0 on ok=1 (and, with a
/// golden, only if every streamed field matches the committed record).
int client_request(const std::string& socket_path, const std::vector<std::string>& tokens,
                   const std::string& golden_name, bool quiet) {
  const int fd = connect_to(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s\n", socket_path.c_str());
    return 1;
  }
  std::string request_line = "forecast";
  for (const std::string& t : tokens) request_line += " " + t;
  if (!send_line(fd, request_line)) {
    ::close(fd);
    return 1;
  }

  std::vector<StreamedField> streamed;
  int current_member = -1;
  bool ok = false;
  std::string line, buffer;
  while (recv_line(fd, line, buffer)) {
    if (!quiet) std::printf("%s\n", line.c_str());
    std::istringstream iss(line);
    std::string kind;
    iss >> kind;
    std::vector<std::string> rest;
    for (std::string t; iss >> t;) rest.push_back(t);
    const auto kv = parse_kv(rest);
    if (kind == "member") {
      current_member = std::stoi(kv.at("index"));
    } else if (kind == "field") {
      StreamedField sf;
      sf.member = current_member;
      sf.field.name = kv.at("name");
      sf.field.tiles = std::stoi(kv.at("tiles"));
      sf.field.ni = std::stoi(kv.at("ni"));
      sf.field.nj = std::stoi(kv.at("nj"));
      sf.field.nk = std::stoi(kv.at("nk"));
      sf.field.checksum = std::stoull(kv.at("checksum"), nullptr, 16);
      std::istringstream samples(kv.at("samples"));
      for (std::string s; std::getline(samples, s, ',');) {
        sf.field.samples.push_back(std::stoull(s, nullptr, 16));
      }
      streamed.push_back(std::move(sf));
    } else if (kind == "done") {
      ok = kv.count("ok") && kv.at("ok") == "1";
      break;
    }
  }
  ::close(fd);
  if (!ok) return 1;

  if (!golden_name.empty()) {
    // Ensemble goldens store member m's field f as "m<m>.<f>": every
    // streamed field must match its committed record bit for bit.
    const std::string path = corpus::default_corpus_dir() + "/" + golden_name + ".gold";
    const verify::GoldenSnapshot snapshot = verify::GoldenSnapshot::load(path);
    long matched = 0;
    for (const StreamedField& sf : streamed) {
      verify::GoldenField expected = sf.field;
      expected.name = "m" + std::to_string(sf.member) + "." + sf.field.name;
      bool found = false;
      for (const verify::GoldenField& g : snapshot.fields) {
        if (g.name != expected.name) continue;
        found = true;
        if (!(g == expected)) {
          std::fprintf(stderr, "golden mismatch: %s\n", expected.name.c_str());
          return 1;
        }
        ++matched;
      }
      if (!found) {
        std::fprintf(stderr, "golden %s has no field %s\n", golden_name.c_str(),
                     expected.name.c_str());
        return 1;
      }
    }
    if (matched == 0) {
      std::fprintf(stderr, "no fields verified against %s\n", golden_name.c_str());
      return 1;
    }
    std::printf("golden %s: %ld fields match\n", golden_name.c_str(), matched);
  }
  return 0;
}

int client_simple(const std::string& socket_path, const std::string& command) {
  const int fd = connect_to(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s\n", socket_path.c_str());
    return 1;
  }
  if (!send_line(fd, command)) {
    ::close(fd);
    return 1;
  }
  std::string line, buffer;
  const bool got = recv_line(fd, line, buffer);
  if (got) std::printf("%s\n", line.c_str());
  ::close(fd);
  return got ? 0 : 1;
}

void usage() {
  std::fprintf(stderr,
               "usage: forecast_server serve    --socket PATH [--ranks N] [--workers N]\n"
               "                                [--max-batch N] [--threads N] [--chaos-rate R]\n"
               "       forecast_server request  --socket PATH key=value... [--golden NAME]\n"
               "                                [--quiet]\n"
               "       forecast_server stats    --socket PATH\n"
               "       forecast_server shutdown --socket PATH\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string mode = argv[1];
  std::string socket_path = "/tmp/cyclone_forecast.sock";
  std::string golden_name;
  bool quiet = false;
  ForecastService::Options options;
  std::vector<std::string> tokens;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--ranks") {
      options.num_ranks = std::stoi(next());
    } else if (arg == "--workers") {
      options.workers = std::stoi(next());
    } else if (arg == "--max-batch") {
      options.max_batch_members = std::stoi(next());
    } else if (arg == "--threads") {
      options.run.num_threads = std::stoi(next());
    } else if (arg == "--chaos-rate") {
      const double rate = std::stod(next());
      options.runtime.faults.drop_rate = rate;
      options.runtime.faults.duplicate_rate = rate;
      options.runtime.faults.reorder_rate = rate;
      options.runtime.faults.corrupt_rate = rate;
    } else if (arg == "--golden") {
      golden_name = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      tokens.push_back(arg);
    }
  }
  try {
    if (mode == "serve") return serve(socket_path, options);
    if (mode == "request") return client_request(socket_path, tokens, golden_name, quiet);
    if (mode == "stats") return client_simple(socket_path, "stats");
    if (mode == "shutdown") return client_simple(socket_path, "shutdown");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "forecast_server: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
