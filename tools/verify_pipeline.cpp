// verify_pipeline — translation-validate a transformation pipeline.
//
// Builds a program (a seeded fuzz program or the fv3 dycore), applies a
// comma-separated list of transformation passes, runs original and
// transformed through the reference interpreter on identical seeded field
// catalogs over a launch-domain sweep, and prints a JSON verdict.
//
//   verify_pipeline --program fuzz:42 --passes strength_reduce,fuse_sgf
//   verify_pipeline --program dycore --passes orchestrate
//   verify_pipeline --program fuzz:7 --passes fuse_otf --mutate 3   # must FAIL
//   verify_pipeline --program fuzz:9 --compare-serial --threads 7   # engine check
//   verify_pipeline --program dycore --concurrent --ranks 24        # runtime check
//
// With --compare-serial, the transformed program is additionally executed on
// the parallel engine (--threads sets the team size) and compared bitwise
// against the serial reference interpreter — the engine's determinism
// contract, checked from the command line.
//
// With --concurrent, the transformed program is additionally run through the
// thread-per-rank concurrent runtime on --ranks ranks (a multiple of 6) and
// compared bitwise against the sequential lockstep scheduler across thread
// budgets, overlap on/off, and randomized message-arrival orders. If a
// placement-dependent pass was applied, the concurrent check falls back to
// the original program (the transformed one is only valid on the pass
// placement); the JSON records which subject was checked.
//
// Exit code: 0 equivalent, 1 divergent, 2 usage/build error.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "comm/elastic.hpp"
#include "comm/simcomm.hpp"
#include "comm/verify_distributed.hpp"
#include "comm/verify_elastic.hpp"
#include "core/dsl/builder.hpp"
#include "core/exec/engine.hpp"
#include "core/tune/search.hpp"
#include "core/util/rng.hpp"
#include "core/tune/tunedb.hpp"
#include "core/verify/pipeline.hpp"
#include "core/verify/random_program.hpp"
#include "core/verify/verify.hpp"
#include "ensemble/service.hpp"
#include "ensemble/verify_ensemble.hpp"
#include "fv3/dyn_core.hpp"
#include "fv3/state.hpp"
#include "fv3/verify_distributed.hpp"
#include "grid/partitioner.hpp"

namespace {

using namespace cyclone;

void usage() {
  std::fprintf(stderr,
               "usage: verify_pipeline [options]\n"
               "  --program SPEC     fuzz:<seed> (default fuzz:1) or dycore\n"
               "  --passes a,b,c     passes to apply in order (default: none)\n"
               "  --data-seed N      seed of the randomized catalogs (default 0xC0FFEE)\n"
               "  --trials N         independent fills per domain (default 1)\n"
               "  --max-ulps X       per-field ulp tolerance (default 64)\n"
               "  --mutate N         inject a seeded defect after the passes\n"
               "  --threads N        engine team size for --compare-serial (default: OpenMP)\n"
               "  --backend NAME     executor for --compare-serial: interp, tape, openmp\n"
               "                     (default), or jit. Also times one program execution\n"
               "                     on every backend and reports the wall times\n"
               "  --compare-serial   also run the transformed program on the parallel\n"
               "                     engine and compare bitwise vs the serial interpreter\n"
               "  --concurrent       also run through the thread-per-rank concurrent\n"
               "                     runtime and compare bitwise vs the lockstep scheduler\n"
               "  --ranks N          rank count for --concurrent/--chaos, a multiple of 6\n"
               "                     (default 6)\n"
               "  --reps N           arrival-order repetitions for --concurrent (default 5)\n"
               "  --recv-timeout S   channel recv timeout in seconds for --concurrent and\n"
               "                     --chaos (default 120)\n"
               "  --chaos            chaos-verify the self-healing runtime: inject faults,\n"
               "                     recover, and require bitwise identity with the\n"
               "                     fault-free lockstep run. Programs: diffusion, vector,\n"
               "                     dycore, fuzz:<seed>\n"
               "  --fault-modes CSV  fault families to sweep (drop,duplicate,reorder,\n"
               "                     corrupt,delay,crash,hang; default drop,corrupt,crash)\n"
               "  --chaos-seeds N    fault seeds per mode (default 5)\n"
               "  --fault-seed N     base seed the per-run fault seeds derive from\n"
               "  --fault-rate X     per-message fault probability (default 0.25)\n"
               "  --crash-rank N     pin the crashing/hanging rank (default: seed-derived)\n"
               "  --crash-step N     pin the failing step (default: seed-derived)\n"
               "  --chaos-steps N    program passes per chaos run (default 2)\n"
               "  --ensemble         batched-vs-solo ensemble sweep: for both model cores,\n"
               "                     every batched member across backends x member counts x\n"
               "                     seeds must be bitwise identical to its solo run.\n"
               "                     --ranks, --threads, --seeds, --members, --steps apply\n"
               "  --seeds N          perturbation seeds for --ensemble (default 3)\n"
               "  --members CSV      member counts for --ensemble (default 1,4)\n"
               "  --steps N          timesteps per --ensemble run (default 2)\n"
               "  --elastic          prove the elastic membership layer invisible to the\n"
               "                     numerics: scripted shrink/grow round-trips and a\n"
               "                     kill-then-rejoin under chaos must match the static-\n"
               "                     membership lockstep run at 0 ULP, then an injected\n"
               "                     straggler must trigger a load-balancer re-roster.\n"
               "                     --seeds, --steps, --fault-seed, --fault-rate,\n"
               "                     --crash-step and --recv-timeout apply\n"
               "  --resize-script S  membership timeline \"step:ranks,step:ranks\" for\n"
               "                     --elastic: first event is the shrink, second the grow\n"
               "                     (default 2:6,5:24; --ranks sets the starting roster,\n"
               "                     default 24 in this mode)\n"
               "  --imbalance SPEC   synthetic straggler \"rank:extra_us\" for the elastic\n"
               "                     rebalance check (default 2:2000; off to skip)\n"
               "  --elastic-backends CSV\n"
               "                     backends the elastic sweep proves (default\n"
               "                     interp,openmp,jit)\n"
               "  --tune-mode NAME   off (default), guided, or exhaustive: autotune the\n"
               "                     transformed program before the equivalence check and\n"
               "                     report the search accounting; online: re-tune between\n"
               "                     steps inside the --concurrent runtime check\n"
               "  --tune-db PATH     persistent tuning database for --tune-mode (default:\n"
               "                     none; a second run against the same DB starts warm)\n"
               "  --list-passes      print the known pass names and exit\n");
}

/// exchange(q) -> lap = 5-point laplacian of q -> out = 5-point of lap. The
/// same shape the runtime tests use: radius-2 overlap, one scalar exchange.
ir::Program make_diffusion_program() {
  using dsl::E;
  ir::Program p("diffusion");
  p.append_state(ir::State{"hx", {ir::SNode::make_halo_exchange("hx.q", {"q"}, 3)}});
  dsl::StencilBuilder b("diffuse");
  auto q = b.field("q");
  auto lap = b.field("lap");
  auto out = b.field("out");
  b.parallel().full().assign(lap, q(1, 0) + q(-1, 0) + q(0, 1) + q(0, -1) - E(q) * 4.0);
  b.parallel().full().assign(
      out, E(q) + (lap(1, 0) + lap(-1, 0) + lap(0, 1) + lap(0, -1) - E(lap) * 4.0) * 0.1);
  p.append_state(ir::State{"compute", {ir::SNode::make_stencil("diffuse", b.build())}});
  return p;
}

/// Vector exchange (u, v) + divergence: the rotated-component wire path.
ir::Program make_vector_program() {
  ir::Program p("vector");
  p.append_state(
      ir::State{"hx", {ir::SNode::make_halo_exchange("hx.uv", {"u", "v"}, 3, true)}});
  dsl::StencilBuilder b("div");
  auto u = b.field("u");
  auto v = b.field("v");
  auto d = b.field("d");
  b.parallel().full().assign(d, u(1, 0) - u(-1, 0) + v(0, 1) - v(0, -1));
  p.append_state(ir::State{"compute", {ir::SNode::make_stencil("div", b.build())}});
  return p;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Best-of-3 wall time of one full program execution on `backend` (after a
/// warm-up execution, so JIT codegen/compilation and temp-pool allocation
/// never land in the measurement).
double time_backend_ms(const ir::Program& prog, exec::ExecBackend backend,
                       const exec::LaunchDomain& dom, uint64_t seed, int threads) {
  ir::Program p = prog;
  p.invalidate_compiled();
  exec::RunOptions r;
  r.num_threads = threads;
  r.backend = backend;
  p.set_run_options(r);
  FieldCatalog catalog = verify::make_test_catalog(prog, prog, dom, seed);
  p.execute(catalog, dom);
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    p.execute(catalog, dom);
    const std::chrono::duration<double, std::milli> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_spec = "fuzz:1";
  std::string passes_csv;
  verify::VerifyOptions options;
  bool mutate = false;
  uint64_t mutate_seed = 0;
  bool compare_serial = false;
  bool time_backends = false;
  bool concurrent = false;
  int ranks = 6;
  int concurrent_reps = 5;
  exec::RunOptions run;
  bool chaos = false;
  bool elastic = false;
  bool ranks_set = false;
  bool seeds_set = false;
  bool steps_set = false;
  std::string resize_script = "2:6,5:24";
  std::string imbalance_spec = "2:2000";
  std::string elastic_backends_csv = "interp,openmp,jit";
  bool ensemble_sweep = false;
  int ensemble_seeds = 3;
  std::string ensemble_members_csv = "1,4";
  int ensemble_steps = 2;
  std::string fault_modes_csv = "drop,corrupt,crash";
  int chaos_seeds = 5;
  uint64_t fault_seed = 0xC4405ull;
  double fault_rate = 0.25;
  int crash_rank = -1;
  int crash_step = -1;
  int chaos_steps = 2;
  double recv_timeout = 120.0;
  exec::TuneMode tune_mode = exec::TuneMode::Off;
  std::string tune_db;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--program") {
      program_spec = value();
    } else if (arg == "--passes") {
      passes_csv = value();
    } else if (arg == "--data-seed") {
      options.data_seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--trials") {
      options.trials = std::atoi(value());
    } else if (arg == "--max-ulps") {
      options.max_ulps = std::atof(value());
    } else if (arg == "--mutate") {
      mutate = true;
      mutate_seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--threads") {
      run.num_threads = std::atoi(value());
    } else if (arg == "--backend") {
      const std::string name = value();
      if (!exec::parse_backend(name, run.backend)) {
        std::fprintf(stderr, "unknown backend '%s'\n", name.c_str());
        return 2;
      }
      time_backends = true;
    } else if (arg == "--compare-serial") {
      compare_serial = true;
    } else if (arg == "--concurrent") {
      concurrent = true;
    } else if (arg == "--ranks") {
      ranks = std::atoi(value());
      ranks_set = true;
    } else if (arg == "--reps") {
      concurrent_reps = std::atoi(value());
    } else if (arg == "--recv-timeout") {
      recv_timeout = std::atof(value());
    } else if (arg == "--ensemble") {
      ensemble_sweep = true;
    } else if (arg == "--seeds") {
      ensemble_seeds = std::atoi(value());
      seeds_set = true;
    } else if (arg == "--members") {
      ensemble_members_csv = value();
    } else if (arg == "--steps") {
      ensemble_steps = std::atoi(value());
      steps_set = true;
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--elastic") {
      elastic = true;
    } else if (arg == "--resize-script") {
      resize_script = value();
    } else if (arg == "--imbalance") {
      imbalance_spec = value();
    } else if (arg == "--elastic-backends") {
      elastic_backends_csv = value();
    } else if (arg == "--fault-modes") {
      fault_modes_csv = value();
    } else if (arg == "--chaos-seeds") {
      chaos_seeds = std::atoi(value());
    } else if (arg == "--fault-seed") {
      fault_seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--fault-rate") {
      fault_rate = std::atof(value());
    } else if (arg == "--crash-rank") {
      crash_rank = std::atoi(value());
    } else if (arg == "--crash-step") {
      crash_step = std::atoi(value());
    } else if (arg == "--chaos-steps") {
      chaos_steps = std::atoi(value());
    } else if (arg == "--tune-mode") {
      const std::string name = value();
      if (!exec::parse_tune_mode(name, tune_mode)) {
        std::fprintf(stderr, "unknown tune mode '%s'\n", name.c_str());
        return 2;
      }
    } else if (arg == "--tune-db") {
      tune_db = value();
    } else if (arg == "--list-passes") {
      for (const auto& name : verify::known_passes()) std::printf("%s\n", name.c_str());
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  // Ensemble mode is self-contained: run the batched-vs-solo bitwise sweep
  // for both model cores and report per-core comparison counts. Exit 0 iff
  // every (backend, member count, seed, member, rank, field) comparison is
  // identical at 0 ULP.
  if (ensemble_sweep) {
    try {
      ensemble::EnsembleVerifyOptions evo;
      evo.steps = ensemble_steps;
      evo.num_ranks = ranks;
      if (run.num_threads > 0) evo.num_threads = run.num_threads;
      evo.member_counts.clear();
      for (const auto& count : split_csv(ensemble_members_csv)) {
        evo.member_counts.push_back(std::atoi(count.c_str()));
      }
      evo.seeds.clear();
      for (int s = 0; s < ensemble_seeds; ++s) evo.seeds.push_back(0x5EEDull + s);

      evo.ic = "hill";
      const ensemble::EnsembleVerifyReport swe_report =
          ensemble::verify_batched_vs_solo<swe::SweModel>(
              ensemble::standard_swe_config(12, 2), evo);
      evo.ic = "baro";
      const ensemble::EnsembleVerifyReport dycore_report =
          ensemble::verify_batched_vs_solo<fv3::DistributedModel>(
              ensemble::standard_dycore_config(12, 4, 1), evo);

      auto report_json = [](const ensemble::EnsembleVerifyReport& r) {
        std::ostringstream os;
        os << "{\"comparisons\": " << r.comparisons << ", \"mismatches\": " << r.mismatches
           << ", \"failures\": [";
        for (size_t i = 0; i < r.failures.size() && i < 5; ++i) {
          os << (i ? ", " : "") << "\"" << json_escape(r.failures[i]) << "\"";
        }
        os << "]}";
        return os.str();
      };
      std::ostringstream out;
      out << "{\n  \"mode\": \"ensemble\",\n  \"ranks\": " << ranks
          << ",\n  \"seeds\": " << ensemble_seeds << ",\n  \"members\": \""
          << ensemble_members_csv << "\",\n  \"steps\": " << ensemble_steps
          << ",\n  \"swe\": " << report_json(swe_report)
          << ",\n  \"dycore\": " << report_json(dycore_report) << ",\n  \"equivalent\": "
          << ((swe_report.ok() && dycore_report.ok()) ? "true" : "false") << "\n}\n";
      std::fputs(out.str().c_str(), stdout);
      return swe_report.ok() && dycore_report.ok() ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ensemble sweep failed to run: %s\n", e.what());
      return 2;
    }
  }

  // Chaos mode is self-contained: build the program, sweep fault plans, and
  // require every recovered run to match the fault-free lockstep reference
  // bitwise. The pass-equivalence machinery below is not involved.
  if (chaos) {
    try {
      std::vector<verify::FaultMode> modes;
      for (const auto& name : split_csv(fault_modes_csv)) {
        modes.push_back(verify::parse_fault_mode(name));
      }
      verify::EquivalenceReport report;
      if (program_spec == "dycore") {
        fv3::FvConfig cfg;
        cfg.npx = 12;
        cfg.npz = 4;
        cfg.ntracers = 1;
        fv3::DycoreChaosOptions co;
        co.modes = modes;
        co.seeds_per_mode = chaos_seeds;
        co.fault_seed_base = fault_seed;
        co.rate = fault_rate;
        co.steps = chaos_steps;
        co.crash_rank = crash_rank;
        co.crash_step = crash_step;
        co.recv_timeout_seconds = recv_timeout;
        report = fv3::verify_resilient_dycore(cfg, ranks, co);
      } else {
        ir::Program prog("empty");
        if (program_spec == "diffusion") {
          prog = make_diffusion_program();
        } else if (program_spec == "vector") {
          prog = make_vector_program();
        } else if (program_spec.rfind("fuzz:", 0) == 0) {
          prog = verify::random_program(std::strtoull(program_spec.c_str() + 5, nullptr, 0));
        } else {
          std::fprintf(stderr, "unknown chaos program spec '%s'\n", program_spec.c_str());
          return 2;
        }
        verify::FaultToleranceOptions fo;
        fo.modes = modes;
        fo.seeds_per_mode = chaos_seeds;
        fo.fault_seed_base = fault_seed;
        fo.rate = fault_rate;
        fo.steps = chaos_steps;
        fo.data_seed = options.data_seed;
        fo.crash_rank = crash_rank;
        fo.crash_step = crash_step;
        fo.recv_timeout_seconds = recv_timeout;
        const grid::Partitioner part = grid::Partitioner::for_ranks(12, ranks);
        report = verify::check_fault_tolerant(prog, part, /*nk=*/4, /*halo_width=*/3, fo);
      }
      std::ostringstream out;
      out << "{\n  \"program\": \"" << json_escape(program_spec) << "\",\n"
          << "  \"ranks\": " << ranks << ",\n"
          << "  \"fault_modes\": \"" << json_escape(fault_modes_csv) << "\",\n"
          << "  \"seeds_per_mode\": " << chaos_seeds << ",\n"
          << "  \"fault_rate\": " << fault_rate << ",\n"
          << "  \"chaos_report\": " << verify::report_to_json(report) << "\n}\n";
      std::fputs(out.str().c_str(), stdout);
      return report.equivalent ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos check failed to run: %s\n", e.what());
      return 2;
    }
  }

  // Elastic mode is self-contained: prove the membership layer invisible to
  // the numerics (scripted resizes + kill-then-rejoin under chaos, 0 ULP vs
  // the static lockstep run), then demonstrate the imbalance-triggered
  // rebalance path and surface its structured report (resize log, channel
  // reliability counters, per-rank heartbeat health).
  if (elastic) {
    try {
      const comm::MembershipPlan script = comm::MembershipPlan::parse(resize_script);
      if (script.events.size() < 2) {
        std::fprintf(stderr, "--resize-script needs a shrink and a grow event\n");
        return 2;
      }
      verify::ElasticVerifyOptions evo;
      evo.backends = split_csv(elastic_backends_csv);
      evo.seeds = seeds_set ? ensemble_seeds : 10;
      evo.steps = steps_set ? ensemble_steps : 8;
      evo.initial_ranks = ranks_set ? ranks : 24;
      evo.shrink_at = script.events[0].at_step;
      evo.shrink_ranks = script.events[0].target_ranks;
      evo.grow_at = script.events[1].at_step;
      evo.grow_ranks = script.events[1].target_ranks;
      evo.fault_seed = fault_seed;
      evo.drop_rate = fault_rate;
      if (crash_step >= 0) evo.crash_step = crash_step;
      evo.recv_timeout_seconds = recv_timeout;
      const verify::EquivalenceReport ereport =
          verify::check_elastic_agrees(verify::make_elastic_program(), /*n=*/12, /*nk=*/4,
                                       /*halo_width=*/3, evo);

      // Imbalance leg: inject a synthetic straggler, require the load
      // balancer to shed it through a re-roster, and require the perturbed
      // run to stay bitwise identical to the undisturbed lockstep reference.
      bool imbalance_ok = true;
      std::string imbalance_json;
      if (imbalance_spec != "off") {
        const comm::MembershipPlan spec = comm::MembershipPlan::parse(imbalance_spec);
        if (spec.events.size() != 1) {
          std::fprintf(stderr, "--imbalance wants a single rank:extra_us pair\n");
          return 2;
        }
        const ir::Program prog = verify::make_elastic_program(1);
        const int n = 12, nk = 4, nranks = 6, isteps = steps_set ? ensemble_steps : 8;
        const grid::Partitioner part = grid::Partitioner::for_ranks(n, nranks);
        std::vector<exec::LaunchDomain> doms;
        for (int r = 0; r < part.num_ranks(); ++r) {
          const auto info = part.info(r);
          exec::LaunchDomain dom{info.ni, info.nj, nk};
          dom.gi0 = info.i0;
          dom.gj0 = info.j0;
          dom.gni = part.n();
          dom.gnj = part.n();
          doms.push_back(dom);
        }
        auto catalogs_for = [&] {
          std::vector<FieldCatalog> cats;
          for (size_t r = 0; r < doms.size(); ++r) {
            cats.push_back(
                verify::make_test_catalog(prog, prog, doms[r], Rng::mix(options.data_seed, r)));
          }
          return cats;
        };

        comm::ElasticOptions eo;
        eo.runtime.channel.recv_timeout_seconds = recv_timeout;
        eo.runtime.imbalance.slow_rank = static_cast<int>(spec.events[0].at_step);
        eo.runtime.imbalance.extra_us_per_state = spec.events[0].target_ranks;
        eo.balancer.enabled = true;
        eo.balancer.trigger_ratio = 1.5;
        eo.balancer.warmup_steps = 2;
        comm::ElasticRuntime ert(prog, nk, 3, part, catalogs_for(), eo);
        const comm::ElasticReport ireport = ert.run(isteps);
        imbalance_json = comm::elastic_report_to_json(ireport);
        imbalance_ok = ireport.ok && ireport.rebalances >= 1;
        if (imbalance_ok) {
          auto cats = catalogs_for();
          std::vector<comm::RankDomain> rref;
          for (size_t r = 0; r < cats.size(); ++r) {
            rref.push_back(comm::RankDomain{&cats[r], doms[r]});
          }
          const comm::HaloUpdater halo(part, 3);
          comm::SimComm sim(part.num_ranks());
          for (int t = 0; t < isteps; ++t) comm::run_lockstep_step(prog, halo, rref, sim);
          for (const auto& name : cats[0].names()) {
            const auto want = comm::assemble_owned(part, rref, name);
            const auto got = ert.assemble(name);
            if (want.size() != got.size()) imbalance_ok = false;
            for (size_t i = 0; imbalance_ok && i < want.size(); ++i) {
              if (verify::ulp_distance(want[i], got[i]) != 0.0) imbalance_ok = false;
            }
            if (!imbalance_ok) {
              std::fprintf(stderr, "imbalance run diverged on field '%s'\n", name.c_str());
              break;
            }
          }
        }
      }

      std::ostringstream out;
      out << "{\n  \"mode\": \"elastic\",\n"
          << "  \"resize_script\": \"" << json_escape(resize_script) << "\",\n"
          << "  \"initial_ranks\": " << (ranks_set ? ranks : 24) << ",\n"
          << "  \"backends\": \"" << json_escape(elastic_backends_csv) << "\",\n"
          << "  \"seeds\": " << (seeds_set ? ensemble_seeds : 10) << ",\n"
          << "  \"elastic_report\": " << verify::report_to_json(ereport) << ",\n";
      if (!imbalance_json.empty()) {
        out << "  \"imbalance\": \"" << json_escape(imbalance_spec) << "\",\n"
            << "  \"imbalance_ok\": " << (imbalance_ok ? "true" : "false") << ",\n"
            << "  \"imbalance_run\": " << imbalance_json << ",\n";
      }
      out << "  \"equivalent\": "
          << ((ereport.equivalent && imbalance_ok) ? "true" : "false") << "\n}\n";
      std::fputs(out.str().c_str(), stdout);
      return (ereport.equivalent && imbalance_ok) ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "elastic check failed to run: %s\n", e.what());
      return 2;
    }
  }

  // Build the subject program and the placement the passes transform for.
  ir::Program original("empty");
  exec::LaunchDomain pass_dom = verify::default_domains().front();
  bool sweep = true;  // dycore runs only on its own placement
  try {
    if (program_spec.rfind("fuzz:", 0) == 0) {
      const uint64_t seed = std::strtoull(program_spec.c_str() + 5, nullptr, 0);
      original = verify::random_program(seed);
    } else if (program_spec == "dycore") {
      fv3::FvConfig cfg;
      cfg.npx = 12;
      cfg.npz = 8;
      cfg.ntracers = 2;
      grid::Partitioner part(cfg.npx, 1, 1);
      fv3::ModelState state(cfg, part, 0);
      original = fv3::build_dycore_program(state);
      pass_dom = state.domain();
      sweep = false;
    } else {
      std::fprintf(stderr, "unknown program spec '%s'\n", program_spec.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to build program: %s\n", e.what());
    return 2;
  }

  ir::Program transformed = original;
  std::vector<verify::PassResult> applied;
  bool placement_dependent_pass = false;
  for (const auto& name : split_csv(passes_csv)) {
    const verify::PassResult r = verify::apply_pass(transformed, name, pass_dom);
    if (!r.known) {
      std::fprintf(stderr, "unknown pass '%s' (see --list-passes)\n", name.c_str());
      return 2;
    }
    if (r.placement_dependent) {
      sweep = false;  // valid only on pass_dom
      placement_dependent_pass = true;
    }
    applied.push_back(r);
  }

  // Autotune the transformed program before the equivalence check: tuning is
  // semantics-preserving by contract, so check_equivalent below doubles as
  // the translation validator of whatever the search rewrote. Online mode is
  // exercised inside the --concurrent runtime check instead.
  std::string tuning_json;
  if (tune_mode == exec::TuneMode::Guided || tune_mode == exec::TuneMode::Exhaustive) {
    try {
      tune::TuningOptions topts;
      topts.dom = pass_dom;
      topts.run = run;
      topts.exhaustive = tune_mode == exec::TuneMode::Exhaustive;
      std::unique_ptr<tune::TuneDb> db;
      if (!tune_db.empty()) db = std::make_unique<tune::TuneDb>(tune_db);
      const tune::TuneReport tr = tune::tune_program(transformed, topts, db.get());
      std::ostringstream ts;
      ts << "{\"mode\": \"" << exec::tune_mode_name(tune_mode) << "\", \"warm\": "
         << (tr.warm ? "true" : "false") << ", \"candidates\": " << tr.search.candidates
         << ", \"evaluated\": " << tr.search.evaluated << ", \"timed\": " << tr.search.timed
         << ", \"pruned_saturated\": " << tr.search.pruned_saturated
         << ", \"pruned_low_gain\": " << tr.search.pruned_low_gain
         << ", \"early_exits\": " << tr.search.early_exits
         << ", \"transferred\": " << tr.search.transferred
         << ", \"db_hits\": " << tr.search.db_hits
         << ", \"patterns\": " << tr.patterns
         << ", \"applied\": " << tr.transfer.applied
         << ", \"schedules_changed\": " << tr.schedules_changed
         << ", \"modeled_speedup\": " << tr.speedup() << "}";
      tuning_json = ts.str();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tuning failed to run: %s\n", e.what());
      return 2;
    }
  }

  std::string defect;
  if (mutate) defect = verify::mutate_program(transformed, mutate_seed);

  if (!sweep && options.domains.empty()) options.domains = {pass_dom};
  const verify::EquivalenceReport report = verify::check_equivalent(
      verify::without_callbacks(original), verify::without_callbacks(transformed), options);

  std::ostringstream out;
  out << "{\n  \"program\": \"" << json_escape(program_spec) << "\",\n  \"passes\": [";
  for (size_t i = 0; i < applied.size(); ++i) {
    if (i) out << ", ";
    out << "{\"name\": \"" << json_escape(applied[i].name)
        << "\", \"changes\": " << applied[i].changes << "}";
  }
  out << "],\n";
  if (!tuning_json.empty()) out << "  \"tuning\": " << tuning_json << ",\n";
  if (mutate) out << "  \"injected_defect\": \"" << json_escape(defect) << "\",\n";

  // Optional serial-vs-parallel engine check of the transformed program,
  // executed on whichever backend --backend selected (default OpenMP).
  bool parallel_ok = true;
  if (compare_serial) {
    verify::VerifyOptions po = options;
    const verify::EquivalenceReport preport =
        verify::check_parallel_agrees(verify::without_callbacks(transformed), run, -1, -1, po);
    parallel_ok = preport.equivalent;
    out << "  \"backend\": \"" << exec::backend_name(run.backend) << "\",\n"
        << "  \"threads\": " << exec::resolved_num_threads(run) << ",\n"
        << "  \"parallel_report\": " << verify::report_to_json(preport) << ",\n";
  }

  // Per-backend wall time of one full execution on the pass placement.
  if (time_backends) {
    const ir::Program subject = verify::without_callbacks(transformed);
    out << "  \"backend_times_ms\": {";
    bool first = true;
    for (const exec::ExecBackend be :
         {exec::ExecBackend::Interpreter, exec::ExecBackend::Tape, exec::ExecBackend::OpenMP,
          exec::ExecBackend::Jit}) {
      const double ms =
          time_backend_ms(subject, be, pass_dom, options.data_seed, run.num_threads);
      out << (first ? "" : ", ") << "\"" << exec::backend_name(be) << "\": " << ms;
      first = false;
    }
    out << "},\n";
  }

  // Optional concurrent-runtime-vs-lockstep check on a rank decomposition.
  bool concurrent_ok = true;
  if (concurrent) {
    verify::DistributedVerifyOptions dvo;
    dvo.repetitions = concurrent_reps;
    dvo.data_seed = options.data_seed;
    dvo.recv_timeout_seconds = recv_timeout;
    if (run.num_threads > 0) dvo.thread_budgets = {run.num_threads};
    // A placement-dependent pass produced a program that is only valid on
    // pass_dom; the rank subdomains differ, so check the original instead.
    const ir::Program& subject = placement_dependent_pass ? original : transformed;
    try {
      const grid::Partitioner part = grid::Partitioner::for_ranks(12, ranks);
      ir::Program csubject = verify::without_callbacks(subject);
      // --tune-mode online rides on the program's own run options: the
      // concurrent runtime re-tunes between steps while the lockstep
      // reference never tunes, so the bitwise comparison is the 0-ULP proof
      // that hot-swapped schedules do not change results.
      if (tune_mode == exec::TuneMode::Online) {
        exec::RunOptions cro = csubject.run_options();
        cro.tune_mode = exec::TuneMode::Online;
        cro.tune_db = tune_db;
        csubject.set_run_options(cro);
      }
      const verify::EquivalenceReport creport = verify::check_distributed_agrees(
          csubject, part, pass_dom.nk, /*halo_width=*/3, dvo);
      concurrent_ok = creport.equivalent;
      out << "  \"ranks\": " << ranks << ",\n"
          << "  \"concurrent_subject\": \""
          << (placement_dependent_pass ? "original" : "transformed") << "\",\n";
      if (tune_mode == exec::TuneMode::Online) {
        out << "  \"concurrent_tune_mode\": \"online\",\n";
      }
      out << "  \"concurrent_report\": " << verify::report_to_json(creport) << ",\n";
    } catch (const std::exception& e) {
      std::fprintf(stderr, "concurrent check failed to run: %s\n", e.what());
      return 2;
    }
  }

  out << "  \"report\": " << verify::report_to_json(report) << "\n}\n";
  std::fputs(out.str().c_str(), stdout);
  return report.equivalent && parallel_ok && concurrent_ok ? 0 : 1;
}
