// verify_pipeline — translation-validate a transformation pipeline.
//
// Builds a program (a seeded fuzz program or the fv3 dycore), applies a
// comma-separated list of transformation passes, runs original and
// transformed through the reference interpreter on identical seeded field
// catalogs over a launch-domain sweep, and prints a JSON verdict.
//
//   verify_pipeline --program fuzz:42 --passes strength_reduce,fuse_sgf
//   verify_pipeline --program dycore --passes orchestrate
//   verify_pipeline --program fuzz:7 --passes fuse_otf --mutate 3   # must FAIL
//   verify_pipeline --program fuzz:9 --compare-serial --threads 7   # engine check
//
// With --compare-serial, the transformed program is additionally executed on
// the parallel engine (--threads sets the team size) and compared bitwise
// against the serial reference interpreter — the engine's determinism
// contract, checked from the command line.
//
// Exit code: 0 equivalent, 1 divergent, 2 usage/build error.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/exec/engine.hpp"
#include "core/verify/pipeline.hpp"
#include "core/verify/random_program.hpp"
#include "core/verify/verify.hpp"
#include "fv3/dyn_core.hpp"
#include "fv3/state.hpp"

namespace {

using namespace cyclone;

void usage() {
  std::fprintf(stderr,
               "usage: verify_pipeline [options]\n"
               "  --program SPEC     fuzz:<seed> (default fuzz:1) or dycore\n"
               "  --passes a,b,c     passes to apply in order (default: none)\n"
               "  --data-seed N      seed of the randomized catalogs (default 0xC0FFEE)\n"
               "  --trials N         independent fills per domain (default 1)\n"
               "  --max-ulps X       per-field ulp tolerance (default 64)\n"
               "  --mutate N         inject a seeded defect after the passes\n"
               "  --threads N        engine team size for --compare-serial (default: OpenMP)\n"
               "  --compare-serial   also run the transformed program on the parallel\n"
               "                     engine and compare bitwise vs the serial interpreter\n"
               "  --list-passes      print the known pass names and exit\n");
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_spec = "fuzz:1";
  std::string passes_csv;
  verify::VerifyOptions options;
  bool mutate = false;
  uint64_t mutate_seed = 0;
  bool compare_serial = false;
  exec::RunOptions run;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--program") {
      program_spec = value();
    } else if (arg == "--passes") {
      passes_csv = value();
    } else if (arg == "--data-seed") {
      options.data_seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--trials") {
      options.trials = std::atoi(value());
    } else if (arg == "--max-ulps") {
      options.max_ulps = std::atof(value());
    } else if (arg == "--mutate") {
      mutate = true;
      mutate_seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--threads") {
      run.num_threads = std::atoi(value());
    } else if (arg == "--compare-serial") {
      compare_serial = true;
    } else if (arg == "--list-passes") {
      for (const auto& name : verify::known_passes()) std::printf("%s\n", name.c_str());
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  // Build the subject program and the placement the passes transform for.
  ir::Program original("empty");
  exec::LaunchDomain pass_dom = verify::default_domains().front();
  bool sweep = true;  // dycore runs only on its own placement
  try {
    if (program_spec.rfind("fuzz:", 0) == 0) {
      const uint64_t seed = std::strtoull(program_spec.c_str() + 5, nullptr, 0);
      original = verify::random_program(seed);
    } else if (program_spec == "dycore") {
      fv3::FvConfig cfg;
      cfg.npx = 12;
      cfg.npz = 8;
      cfg.ntracers = 2;
      grid::Partitioner part(cfg.npx, 1, 1);
      fv3::ModelState state(cfg, part, 0);
      original = fv3::build_dycore_program(state);
      pass_dom = state.domain();
      sweep = false;
    } else {
      std::fprintf(stderr, "unknown program spec '%s'\n", program_spec.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to build program: %s\n", e.what());
    return 2;
  }

  ir::Program transformed = original;
  std::vector<verify::PassResult> applied;
  for (const auto& name : split_csv(passes_csv)) {
    const verify::PassResult r = verify::apply_pass(transformed, name, pass_dom);
    if (!r.known) {
      std::fprintf(stderr, "unknown pass '%s' (see --list-passes)\n", name.c_str());
      return 2;
    }
    if (r.placement_dependent) sweep = false;  // valid only on pass_dom
    applied.push_back(r);
  }

  std::string defect;
  if (mutate) defect = verify::mutate_program(transformed, mutate_seed);

  if (!sweep && options.domains.empty()) options.domains = {pass_dom};
  const verify::EquivalenceReport report = verify::check_equivalent(
      verify::without_callbacks(original), verify::without_callbacks(transformed), options);

  std::ostringstream out;
  out << "{\n  \"program\": \"" << json_escape(program_spec) << "\",\n  \"passes\": [";
  for (size_t i = 0; i < applied.size(); ++i) {
    if (i) out << ", ";
    out << "{\"name\": \"" << json_escape(applied[i].name)
        << "\", \"changes\": " << applied[i].changes << "}";
  }
  out << "],\n";
  if (mutate) out << "  \"injected_defect\": \"" << json_escape(defect) << "\",\n";

  // Optional serial-vs-parallel engine check of the transformed program.
  bool parallel_ok = true;
  if (compare_serial) {
    verify::VerifyOptions po = options;
    const verify::EquivalenceReport preport =
        verify::check_parallel_agrees(verify::without_callbacks(transformed), run, -1, -1, po);
    parallel_ok = preport.equivalent;
    out << "  \"threads\": " << exec::resolved_num_threads(run) << ",\n"
        << "  \"parallel_report\": " << verify::report_to_json(preport) << ",\n";
  }

  out << "  \"report\": " << verify::report_to_json(report) << "\n}\n";
  std::fputs(out.str().c_str(), stdout);
  return report.equivalent && parallel_ok ? 0 : 1;
}
