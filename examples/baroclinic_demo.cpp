// Baroclinic-wave demo: the paper's distributed test case (Sec. IX) on the
// simulated 6-rank cubed sphere. Initializes the balanced zonal jet with a
// perturbation, advances the full DSL dynamical core, and prints global
// diagnostics each step — mass conservation and wave growth are visible in
// the numbers.
//
//   ./example_baroclinic_demo [npx] [npz] [steps] [--threads N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/exec/engine.hpp"
#include "core/util/strings.hpp"
#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"

using namespace cyclone;

int main(int argc, char** argv) {
  exec::RunOptions run;
  std::vector<const char*> pos;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc) {
      run.num_threads = std::atoi(argv[++a]);
    } else {
      pos.push_back(argv[a]);
    }
  }
  fv3::FvConfig cfg;
  cfg.npx = pos.size() > 0 ? std::atoi(pos[0]) : 24;
  cfg.npz = pos.size() > 1 ? std::atoi(pos[1]) : 12;
  const int steps = pos.size() > 2 ? std::atoi(pos[2]) : 5;
  cfg.k_split = 2;
  cfg.n_split = 3;
  cfg.ntracers = 4;
  cfg.dt = 600.0;

  std::printf("baroclinic wave on the cubed sphere: c%d, %d levels, 6 ranks, dt=%.0fs, %d threads\n",
              cfg.npx, cfg.npz, cfg.dt, exec::resolved_num_threads(run));

  fv3::DistributedModel model(cfg, 6);
  model.set_run_options(run);
  fv3::BaroclinicCase wave;
  wave.u_pert = 2.0;
  fv3::init_baroclinic(model, wave);

  const fv3::GlobalDiagnostics start = model.diagnostics();
  std::printf("%6s %16s %14s %10s %10s %10s\n", "step", "total mass", "tracer mass",
              "max |u|", "max |w|", "mean pt");
  auto print = [&](int step, const fv3::GlobalDiagnostics& d) {
    std::printf("%6d %16.6e %14.6e %10.3f %10.4f %10.3f\n", step, d.total_mass,
                d.tracer_mass_q0, d.max_wind, d.max_w, d.mean_pt);
  };
  print(0, start);

  for (int s = 1; s <= steps; ++s) {
    model.step();
    print(s, model.diagnostics());
  }

  const fv3::GlobalDiagnostics end = model.diagnostics();
  std::printf("\nmass drift: %.3e (relative)\n",
              end.total_mass / start.total_mass - 1.0);
  std::printf("halo traffic: %ld messages, %s total\n", model.comm().total_messages(),
              str::human_bytes(static_cast<double>(model.comm().total_bytes())).c_str());
  return 0;
}
