// The optimization pipeline of Fig. 7, end to end: build the dycore program,
// apply initial heuristics (local schedule auto-tuning), run the automated
// performance-bound analysis to find hotspots, fine-tune (pow strength
// reduction, local storage, region splitting), then transfer-tune. Every
// stage prints the modeled step time — the same numbers Table III tracks —
// and the final program is executed to prove the transformations preserve
// the physics.
//
//   ./example_tuning_pipeline

#include <cstdio>

#include "core/orch/orchestrate.hpp"
#include "core/util/strings.hpp"
#include "core/perf/report.hpp"
#include "core/tune/tuner.hpp"
#include "core/xform/passes.hpp"
#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"

using namespace cyclone;

namespace {

double modeled(const ir::Program& prog, const exec::LaunchDomain& dom) {
  return perf::model_program(ir::expand_program(prog, dom), perf::p100());
}

void stage(const char* name, double t) {
  std::printf("  %-44s %12s\n", name, str::human_time(t).c_str());
}

}  // namespace

int main() {
  fv3::FvConfig cfg;
  cfg.npx = 48;
  cfg.npz = 32;
  cfg.ntracers = 4;
  cfg.k_split = 2;
  cfg.n_split = 4;
  cfg.dt = 450.0;

  fv3::DistributedModel model(cfg, 6, fv3::DycoreSchedules::defaults());
  fv3::init_baroclinic(model);
  ir::Program& prog = model.program();
  const exec::LaunchDomain dom = model.state(0).domain();

  tune::TuningOptions topt;
  topt.dom = dom;
  topt.machine = perf::p100();

  std::printf("== optimization pipeline (Fig. 7) ==\n");
  stage("default schedules", modeled(prog, dom));

  // 1. Initial heuristics: per-node schedule search.
  const int changed = tune::autotune_schedules(prog, topt);
  std::printf("  (autotuned %d stencil nodes)\n", changed);
  stage("after schedule heuristics", modeled(prog, dom));

  // 2. Automated performance-bound analysis points at the hotspots.
  const auto report = perf::bandwidth_report(ir::expand_program(prog, dom), topt.machine);
  std::printf("\n  top kernels by modeled runtime (the engineer's worklist):\n");
  std::printf("%s\n", perf::format_report(report, 6).c_str());

  // 3. Fine-tuning guided by the report.
  xform::set_vertical_cache(prog, sched::CacheKind::Registers);
  const int pows = xform::strength_reduce_program(prog);
  xform::set_region_strategy(prog, sched::RegionStrategy::SeparateKernels);
  std::printf("  (register caching on, %d pow sites reduced, regions split)\n", pows);
  stage("after fine tuning", modeled(prog, dom));

  // 4. Transfer tuning.
  auto patterns = tune::collect_patterns(
      tune::tune_cutouts(prog, topt, tune::TransformKind::OtfFusion));
  const auto sgf = tune::collect_patterns(
      tune::tune_cutouts(prog, topt, tune::TransformKind::SubgraphFusion));
  patterns.insert(patterns.end(), sgf.begin(), sgf.end());
  const auto transfer_report = tune::transfer(prog, patterns, topt);
  std::printf("  (%d patterns extracted, %d transfers applied)\n",
              static_cast<int>(patterns.size()), transfer_report.applied);
  stage("after transfer tuning", modeled(prog, dom));

  // 5. Orchestrate (constant propagation into kernels) and prove the tuned
  //    program still computes the same weather.
  orch::orchestrate(prog);
  fv3::DistributedModel reference(cfg, 6);
  fv3::init_baroclinic(reference);
  reference.step();
  model.step();
  double diff = 0;
  for (int r = 0; r < 6; ++r) {
    for (const auto& name : fv3::ModelState::prognostic_names(cfg.ntracers)) {
      diff = std::max(diff, FieldD::max_abs_diff(reference.state(r).f(name),
                                                 model.state(r).f(name)));
    }
  }
  std::printf("\n  physics check: max |tuned - reference| over all prognostics = %.3e\n", diff);
  std::printf("  (every transformation was semantics-preserving)\n");
  return 0;
}
