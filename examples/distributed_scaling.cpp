// Distributed-execution example: run the same global problem on different
// cubed-sphere decompositions (6, 24, 54 simulated ranks), verify the
// physics is decomposition-independent, and show the halo-exchange traffic
// each layout generates — the communication view of Sec. IV-C.
//
//   ./example_distributed_scaling

#include <cstdio>

#include "core/util/strings.hpp"
#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"

using namespace cyclone;

int main() {
  fv3::FvConfig cfg;
  cfg.npx = 24;
  cfg.npz = 10;
  cfg.k_split = 1;
  cfg.n_split = 3;
  cfg.ntracers = 2;
  cfg.dt = 450.0;

  std::printf("one global c%d problem, three decompositions, one physics answer\n\n",
              cfg.npx);
  std::printf("%8s %10s %16s %10s %12s %14s\n", "ranks", "subdomain", "total mass",
              "max |u|", "messages", "halo bytes");

  double reference_mass = 0;
  for (int ranks : {6, 24, 54}) {
    fv3::DistributedModel model(cfg, ranks);
    fv3::init_baroclinic(model);
    model.comm().reset_counters();
    model.step();
    const auto d = model.diagnostics();
    const auto& info = model.partitioner().info(0);
    std::printf("%8d %6dx%-4d %16.8e %10.4f %12ld %14s\n", ranks, info.ni, info.nj,
                d.total_mass, d.max_wind, model.comm().total_messages(),
                str::human_bytes(static_cast<double>(model.comm().total_bytes())).c_str());
    if (ranks == 6) {
      reference_mass = d.total_mass;
    } else {
      std::printf("%8s relative mass difference vs 6 ranks: %.3e\n", "",
                  d.total_mass / reference_mass - 1.0);
    }
  }

  std::printf(
      "\nMore ranks exchange more (smaller) messages for the same physics — the\n"
      "communication pattern the network model charges in the weak-scaling bench.\n");
  return 0;
}
