// The orchestration interop story (paper Sec. V-B): even with the whole
// model compiled into one program, callback nodes keep a live connection to
// the host — here an in-situ visualization callback renders the evolving
// tracer field as an ASCII lat-lon map *from inside the running program*,
// exactly where a Python callback would call matplotlib.
//
//   ./example_visualization_callback [steps]

#include <cstdio>
#include <cstdlib>

#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"
#include "fv3/latlon.hpp"

using namespace cyclone;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 4;

  fv3::FvConfig cfg;
  cfg.npx = 24;
  cfg.npz = 8;
  cfg.k_split = 1;
  cfg.n_split = 3;
  cfg.ntracers = 1;
  cfg.dt = 900.0;

  fv3::DistributedModel model(cfg, 6);
  fv3::BaroclinicCase wave;
  wave.u0 = 45.0;
  fv3::init_baroclinic(model, wave);

  // Inject a callback node at the end of the program: it runs on rank 0's
  // catalog each step and triggers the global visualization. Ordering
  // relative to the stencil nodes is preserved (the __pystate mechanism).
  int frame = 0;
  bool render_now = false;
  model.program().append_state(ir::State{
      "visualize", {ir::SNode::make_callback("ascii_plot", [&](FieldCatalog&) {
        render_now = true;
      })}});

  for (int s = 0; s <= steps; ++s) {
    if (s > 0) model.step();
    if (s == 0 || render_now) {
      render_now = false;
      const fv3::LatLonGrid grid = fv3::sample_latlon(model, "q0", cfg.npz / 2, 16, 48);
      std::printf("--- tracer q0, step %d (frame %d) ---\n%s\n", s, frame++,
                  fv3::ascii_map(grid).c_str());
    }
  }

  const auto d = model.diagnostics();
  std::printf("final: mass %.4e, max|u| %.2f m/s — rendered %d frames in situ\n",
              d.total_mass, d.max_wind, frame);
  return 0;
}
