// Quickstart: author a stencil in the declarative DSL, run it through the
// compiled (tape) backend, inspect the result, and ask the performance model
// what it would cost on a P100. This is the 60-second tour of the library.
//
//   ./example_quickstart

#include <cstdio>

#include "core/dsl/builder.hpp"
#include "core/exec/tape.hpp"
#include "core/ir/expand.hpp"
#include "core/perf/model.hpp"
#include "core/util/strings.hpp"

using namespace cyclone;

int main() {
  // 1. Declare a stencil: 2-D diffusion with a forward vertical relaxation,
  //    written like the discretized math, free of loops and layouts.
  dsl::StencilBuilder b("diffuse_relax");
  auto q = b.field("q");
  auto out = b.field("out");
  auto nu = b.param("nu");

  b.parallel().full().assign(
      out, dsl::E(q) + dsl::E(nu) * (q(1, 0) + q(-1, 0) + q(0, 1) + q(0, -1) - 4.0 * dsl::E(q)));
  b.forward()
      .interval(dsl::inner_levels(1, 0))
      .assign(out, out.at_k(-1) * 0.25 + dsl::E(out) * 0.75);

  // 2. Allocate fields (halo + aligned padding handled by the library) and
  //    run the compiled stencil.
  FieldCatalog fields;
  auto& qf = fields.create("q", 32, 32, 8, HaloSpec{1, 1});
  fields.create("out", 32, 32, 8, HaloSpec{1, 1});
  qf.fill_with([](int i, int j, int k) { return (i == 16 && j == 16) ? 100.0 : 0.0 + k; });

  exec::StencilArgs args;
  args.params["nu"] = 0.2;
  exec::CompiledStencil stencil(b.build());
  const exec::LaunchDomain domain{32, 32, 8};
  stencil.run(fields, args, domain);

  std::printf("center column after diffusion + relaxation:\n");
  for (int k = 0; k < 8; ++k) {
    std::printf("  k=%d  out(16,16)=%8.4f\n", k, fields.at("out")(16, 16, k));
  }

  // 3. Ask the data-centric model what this costs on a GPU.
  ir::Program meta;
  ir::SNode node = ir::SNode::make_stencil("diffuse_relax", b.build(), args,
                                           sched::tuned_horizontal());
  const auto kernels = ir::expand_node(node, meta, domain, 1);
  std::printf("\nexpansion: %zu kernels\n", kernels.size());
  for (const auto& k : kernels) {
    const auto t = perf::model_kernel(k, perf::p100());
    std::printf("  %-22s %8ld threads  %10s modeled  %5.1f%% of peak BW\n", k.label.c_str(),
                k.threads, str::human_time(t.simulated).c_str(), 100 * t.utilization());
  }
  return 0;
}
