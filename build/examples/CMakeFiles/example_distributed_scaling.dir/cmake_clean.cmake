file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_scaling.dir/distributed_scaling.cpp.o"
  "CMakeFiles/example_distributed_scaling.dir/distributed_scaling.cpp.o.d"
  "example_distributed_scaling"
  "example_distributed_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
