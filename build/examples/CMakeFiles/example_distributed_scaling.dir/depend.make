# Empty dependencies file for example_distributed_scaling.
# This may be replaced when dependencies are built.
