file(REMOVE_RECURSE
  "CMakeFiles/example_tuning_pipeline.dir/tuning_pipeline.cpp.o"
  "CMakeFiles/example_tuning_pipeline.dir/tuning_pipeline.cpp.o.d"
  "example_tuning_pipeline"
  "example_tuning_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tuning_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
