# Empty dependencies file for example_tuning_pipeline.
# This may be replaced when dependencies are built.
