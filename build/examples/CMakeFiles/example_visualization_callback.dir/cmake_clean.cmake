file(REMOVE_RECURSE
  "CMakeFiles/example_visualization_callback.dir/visualization_callback.cpp.o"
  "CMakeFiles/example_visualization_callback.dir/visualization_callback.cpp.o.d"
  "example_visualization_callback"
  "example_visualization_callback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_visualization_callback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
