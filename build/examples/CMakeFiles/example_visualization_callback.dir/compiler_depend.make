# Empty compiler generated dependencies file for example_visualization_callback.
# This may be replaced when dependencies are built.
