file(REMOVE_RECURSE
  "CMakeFiles/example_baroclinic_demo.dir/baroclinic_demo.cpp.o"
  "CMakeFiles/example_baroclinic_demo.dir/baroclinic_demo.cpp.o.d"
  "example_baroclinic_demo"
  "example_baroclinic_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_baroclinic_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
