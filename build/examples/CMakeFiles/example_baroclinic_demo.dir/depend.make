# Empty dependencies file for example_baroclinic_demo.
# This may be replaced when dependencies are built.
