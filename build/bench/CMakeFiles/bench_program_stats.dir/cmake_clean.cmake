file(REMOVE_RECURSE
  "CMakeFiles/bench_program_stats.dir/bench_program_stats.cpp.o"
  "CMakeFiles/bench_program_stats.dir/bench_program_stats.cpp.o.d"
  "bench_program_stats"
  "bench_program_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_program_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
