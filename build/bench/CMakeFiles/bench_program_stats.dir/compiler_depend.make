# Empty compiler generated dependencies file for bench_program_stats.
# This may be replaced when dependencies are built.
