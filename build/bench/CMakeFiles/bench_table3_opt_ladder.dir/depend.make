# Empty dependencies file for bench_table3_opt_ladder.
# This may be replaced when dependencies are built.
