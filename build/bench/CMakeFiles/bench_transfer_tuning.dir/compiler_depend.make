# Empty compiler generated dependencies file for bench_transfer_tuning.
# This may be replaced when dependencies are built.
