file(REMOVE_RECURSE
  "CMakeFiles/bench_transfer_tuning.dir/bench_transfer_tuning.cpp.o"
  "CMakeFiles/bench_transfer_tuning.dir/bench_transfer_tuning.cpp.o.d"
  "bench_transfer_tuning"
  "bench_transfer_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transfer_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
