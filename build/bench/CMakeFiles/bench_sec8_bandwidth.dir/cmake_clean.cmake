file(REMOVE_RECURSE
  "CMakeFiles/bench_sec8_bandwidth.dir/bench_sec8_bandwidth.cpp.o"
  "CMakeFiles/bench_sec8_bandwidth.dir/bench_sec8_bandwidth.cpp.o.d"
  "bench_sec8_bandwidth"
  "bench_sec8_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
