# Empty dependencies file for bench_sec8_bandwidth.
# This may be replaced when dependencies are built.
