# Empty dependencies file for bench_smagorinsky_pow.
# This may be replaced when dependencies are built.
