file(REMOVE_RECURSE
  "CMakeFiles/bench_smagorinsky_pow.dir/bench_smagorinsky_pow.cpp.o"
  "CMakeFiles/bench_smagorinsky_pow.dir/bench_smagorinsky_pow.cpp.o.d"
  "bench_smagorinsky_pow"
  "bench_smagorinsky_pow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smagorinsky_pow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
