# Empty dependencies file for bench_table2_riemann.
# This may be replaced when dependencies are built.
