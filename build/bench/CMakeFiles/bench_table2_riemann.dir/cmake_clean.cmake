file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_riemann.dir/bench_table2_riemann.cpp.o"
  "CMakeFiles/bench_table2_riemann.dir/bench_table2_riemann.cpp.o.d"
  "bench_table2_riemann"
  "bench_table2_riemann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_riemann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
