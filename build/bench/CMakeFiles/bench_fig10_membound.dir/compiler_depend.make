# Empty compiler generated dependencies file for bench_fig10_membound.
# This may be replaced when dependencies are built.
