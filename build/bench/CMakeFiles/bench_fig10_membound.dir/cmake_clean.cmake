file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_membound.dir/bench_fig10_membound.cpp.o"
  "CMakeFiles/bench_fig10_membound.dir/bench_fig10_membound.cpp.o.d"
  "bench_fig10_membound"
  "bench_fig10_membound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_membound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
