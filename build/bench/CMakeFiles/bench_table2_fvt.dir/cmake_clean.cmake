file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fvt.dir/bench_table2_fvt.cpp.o"
  "CMakeFiles/bench_table2_fvt.dir/bench_table2_fvt.cpp.o.d"
  "bench_table2_fvt"
  "bench_table2_fvt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
