# Empty dependencies file for bench_table2_fvt.
# This may be replaced when dependencies are built.
