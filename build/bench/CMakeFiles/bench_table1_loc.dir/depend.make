# Empty dependencies file for bench_table1_loc.
# This may be replaced when dependencies are built.
