
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/cube_topology.cpp" "src/grid/CMakeFiles/cyclone_grid.dir/cube_topology.cpp.o" "gcc" "src/grid/CMakeFiles/cyclone_grid.dir/cube_topology.cpp.o.d"
  "/root/repo/src/grid/geometry.cpp" "src/grid/CMakeFiles/cyclone_grid.dir/geometry.cpp.o" "gcc" "src/grid/CMakeFiles/cyclone_grid.dir/geometry.cpp.o.d"
  "/root/repo/src/grid/partitioner.cpp" "src/grid/CMakeFiles/cyclone_grid.dir/partitioner.cpp.o" "gcc" "src/grid/CMakeFiles/cyclone_grid.dir/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cyclone_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
