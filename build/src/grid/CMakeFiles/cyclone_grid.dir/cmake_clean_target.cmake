file(REMOVE_RECURSE
  "libcyclone_grid.a"
)
