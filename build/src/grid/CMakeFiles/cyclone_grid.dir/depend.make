# Empty dependencies file for cyclone_grid.
# This may be replaced when dependencies are built.
