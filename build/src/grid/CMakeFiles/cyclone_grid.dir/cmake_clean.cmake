file(REMOVE_RECURSE
  "CMakeFiles/cyclone_grid.dir/cube_topology.cpp.o"
  "CMakeFiles/cyclone_grid.dir/cube_topology.cpp.o.d"
  "CMakeFiles/cyclone_grid.dir/geometry.cpp.o"
  "CMakeFiles/cyclone_grid.dir/geometry.cpp.o.d"
  "CMakeFiles/cyclone_grid.dir/partitioner.cpp.o"
  "CMakeFiles/cyclone_grid.dir/partitioner.cpp.o.d"
  "libcyclone_grid.a"
  "libcyclone_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclone_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
