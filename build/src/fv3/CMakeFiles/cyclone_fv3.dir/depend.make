# Empty dependencies file for cyclone_fv3.
# This may be replaced when dependencies are built.
