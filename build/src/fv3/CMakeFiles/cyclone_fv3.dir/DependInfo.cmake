
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fv3/driver.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/driver.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/driver.cpp.o.d"
  "/root/repo/src/fv3/dyn_core.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/dyn_core.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/dyn_core.cpp.o.d"
  "/root/repo/src/fv3/init/baroclinic.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/init/baroclinic.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/init/baroclinic.cpp.o.d"
  "/root/repo/src/fv3/latlon.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/latlon.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/latlon.cpp.o.d"
  "/root/repo/src/fv3/serialization.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/serialization.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/serialization.cpp.o.d"
  "/root/repo/src/fv3/state.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/state.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/state.cpp.o.d"
  "/root/repo/src/fv3/stencils/c_sw.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/c_sw.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/c_sw.cpp.o.d"
  "/root/repo/src/fv3/stencils/d_sw.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/d_sw.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/d_sw.cpp.o.d"
  "/root/repo/src/fv3/stencils/damping.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/damping.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/damping.cpp.o.d"
  "/root/repo/src/fv3/stencils/fv_tp2d.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/fv_tp2d.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/fv_tp2d.cpp.o.d"
  "/root/repo/src/fv3/stencils/pressure.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/pressure.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/pressure.cpp.o.d"
  "/root/repo/src/fv3/stencils/remap.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/remap.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/remap.cpp.o.d"
  "/root/repo/src/fv3/stencils/riem_solver.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/riem_solver.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/riem_solver.cpp.o.d"
  "/root/repo/src/fv3/stencils/tracer.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/tracer.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/tracer.cpp.o.d"
  "/root/repo/src/fv3/stencils/update_dz.cpp" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/update_dz.cpp.o" "gcc" "src/fv3/CMakeFiles/cyclone_fv3.dir/stencils/update_dz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cyclone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/cyclone_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/cyclone_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
