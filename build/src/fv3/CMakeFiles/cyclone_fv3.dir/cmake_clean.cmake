file(REMOVE_RECURSE
  "CMakeFiles/cyclone_fv3.dir/driver.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/driver.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/dyn_core.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/dyn_core.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/init/baroclinic.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/init/baroclinic.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/latlon.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/latlon.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/serialization.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/serialization.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/state.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/state.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/c_sw.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/c_sw.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/d_sw.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/d_sw.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/damping.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/damping.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/fv_tp2d.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/fv_tp2d.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/pressure.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/pressure.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/remap.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/remap.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/riem_solver.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/riem_solver.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/tracer.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/tracer.cpp.o.d"
  "CMakeFiles/cyclone_fv3.dir/stencils/update_dz.cpp.o"
  "CMakeFiles/cyclone_fv3.dir/stencils/update_dz.cpp.o.d"
  "libcyclone_fv3.a"
  "libcyclone_fv3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclone_fv3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
