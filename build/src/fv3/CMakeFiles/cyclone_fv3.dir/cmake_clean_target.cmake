file(REMOVE_RECURSE
  "libcyclone_fv3.a"
)
