# Empty compiler generated dependencies file for cyclone_comm.
# This may be replaced when dependencies are built.
