
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/halo.cpp" "src/comm/CMakeFiles/cyclone_comm.dir/halo.cpp.o" "gcc" "src/comm/CMakeFiles/cyclone_comm.dir/halo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cyclone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/cyclone_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
