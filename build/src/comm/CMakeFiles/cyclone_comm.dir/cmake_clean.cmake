file(REMOVE_RECURSE
  "CMakeFiles/cyclone_comm.dir/halo.cpp.o"
  "CMakeFiles/cyclone_comm.dir/halo.cpp.o.d"
  "libcyclone_comm.a"
  "libcyclone_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclone_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
