file(REMOVE_RECURSE
  "libcyclone_comm.a"
)
