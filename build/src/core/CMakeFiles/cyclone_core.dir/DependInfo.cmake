
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dsl/analysis.cpp" "src/core/CMakeFiles/cyclone_core.dir/dsl/analysis.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/dsl/analysis.cpp.o.d"
  "/root/repo/src/core/dsl/ast.cpp" "src/core/CMakeFiles/cyclone_core.dir/dsl/ast.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/dsl/ast.cpp.o.d"
  "/root/repo/src/core/dsl/builder.cpp" "src/core/CMakeFiles/cyclone_core.dir/dsl/builder.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/dsl/builder.cpp.o.d"
  "/root/repo/src/core/dsl/stencil.cpp" "src/core/CMakeFiles/cyclone_core.dir/dsl/stencil.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/dsl/stencil.cpp.o.d"
  "/root/repo/src/core/dsl/validate.cpp" "src/core/CMakeFiles/cyclone_core.dir/dsl/validate.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/dsl/validate.cpp.o.d"
  "/root/repo/src/core/exec/extents.cpp" "src/core/CMakeFiles/cyclone_core.dir/exec/extents.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/exec/extents.cpp.o.d"
  "/root/repo/src/core/exec/interpreter.cpp" "src/core/CMakeFiles/cyclone_core.dir/exec/interpreter.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/exec/interpreter.cpp.o.d"
  "/root/repo/src/core/exec/launch.cpp" "src/core/CMakeFiles/cyclone_core.dir/exec/launch.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/exec/launch.cpp.o.d"
  "/root/repo/src/core/exec/tape.cpp" "src/core/CMakeFiles/cyclone_core.dir/exec/tape.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/exec/tape.cpp.o.d"
  "/root/repo/src/core/ir/expand.cpp" "src/core/CMakeFiles/cyclone_core.dir/ir/expand.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/ir/expand.cpp.o.d"
  "/root/repo/src/core/ir/lint.cpp" "src/core/CMakeFiles/cyclone_core.dir/ir/lint.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/ir/lint.cpp.o.d"
  "/root/repo/src/core/ir/program.cpp" "src/core/CMakeFiles/cyclone_core.dir/ir/program.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/ir/program.cpp.o.d"
  "/root/repo/src/core/orch/orchestrate.cpp" "src/core/CMakeFiles/cyclone_core.dir/orch/orchestrate.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/orch/orchestrate.cpp.o.d"
  "/root/repo/src/core/perf/machine.cpp" "src/core/CMakeFiles/cyclone_core.dir/perf/machine.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/perf/machine.cpp.o.d"
  "/root/repo/src/core/perf/model.cpp" "src/core/CMakeFiles/cyclone_core.dir/perf/model.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/perf/model.cpp.o.d"
  "/root/repo/src/core/perf/report.cpp" "src/core/CMakeFiles/cyclone_core.dir/perf/report.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/perf/report.cpp.o.d"
  "/root/repo/src/core/sched/schedule.cpp" "src/core/CMakeFiles/cyclone_core.dir/sched/schedule.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/core/tune/tuner.cpp" "src/core/CMakeFiles/cyclone_core.dir/tune/tuner.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/tune/tuner.cpp.o.d"
  "/root/repo/src/core/util/loc.cpp" "src/core/CMakeFiles/cyclone_core.dir/util/loc.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/util/loc.cpp.o.d"
  "/root/repo/src/core/util/strings.cpp" "src/core/CMakeFiles/cyclone_core.dir/util/strings.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/util/strings.cpp.o.d"
  "/root/repo/src/core/xform/expr_rewrite.cpp" "src/core/CMakeFiles/cyclone_core.dir/xform/expr_rewrite.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/xform/expr_rewrite.cpp.o.d"
  "/root/repo/src/core/xform/fusion.cpp" "src/core/CMakeFiles/cyclone_core.dir/xform/fusion.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/xform/fusion.cpp.o.d"
  "/root/repo/src/core/xform/passes.cpp" "src/core/CMakeFiles/cyclone_core.dir/xform/passes.cpp.o" "gcc" "src/core/CMakeFiles/cyclone_core.dir/xform/passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
