# Empty dependencies file for cyclone_core.
# This may be replaced when dependencies are built.
