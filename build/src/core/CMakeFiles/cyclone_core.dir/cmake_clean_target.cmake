file(REMOVE_RECURSE
  "libcyclone_core.a"
)
