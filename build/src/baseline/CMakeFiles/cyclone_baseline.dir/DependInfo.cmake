
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/kernels.cpp" "src/baseline/CMakeFiles/cyclone_baseline.dir/kernels.cpp.o" "gcc" "src/baseline/CMakeFiles/cyclone_baseline.dir/kernels.cpp.o.d"
  "/root/repo/src/baseline/riemann.cpp" "src/baseline/CMakeFiles/cyclone_baseline.dir/riemann.cpp.o" "gcc" "src/baseline/CMakeFiles/cyclone_baseline.dir/riemann.cpp.o.d"
  "/root/repo/src/baseline/step.cpp" "src/baseline/CMakeFiles/cyclone_baseline.dir/step.cpp.o" "gcc" "src/baseline/CMakeFiles/cyclone_baseline.dir/step.cpp.o.d"
  "/root/repo/src/baseline/transport.cpp" "src/baseline/CMakeFiles/cyclone_baseline.dir/transport.cpp.o" "gcc" "src/baseline/CMakeFiles/cyclone_baseline.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cyclone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/cyclone_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
