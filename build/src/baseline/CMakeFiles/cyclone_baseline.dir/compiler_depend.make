# Empty compiler generated dependencies file for cyclone_baseline.
# This may be replaced when dependencies are built.
