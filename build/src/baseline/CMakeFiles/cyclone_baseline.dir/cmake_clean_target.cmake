file(REMOVE_RECURSE
  "libcyclone_baseline.a"
)
