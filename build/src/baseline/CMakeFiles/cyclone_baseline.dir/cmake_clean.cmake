file(REMOVE_RECURSE
  "CMakeFiles/cyclone_baseline.dir/kernels.cpp.o"
  "CMakeFiles/cyclone_baseline.dir/kernels.cpp.o.d"
  "CMakeFiles/cyclone_baseline.dir/riemann.cpp.o"
  "CMakeFiles/cyclone_baseline.dir/riemann.cpp.o.d"
  "CMakeFiles/cyclone_baseline.dir/step.cpp.o"
  "CMakeFiles/cyclone_baseline.dir/step.cpp.o.d"
  "CMakeFiles/cyclone_baseline.dir/transport.cpp.o"
  "CMakeFiles/cyclone_baseline.dir/transport.cpp.o.d"
  "libcyclone_baseline.a"
  "libcyclone_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclone_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
