
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_config_sweep.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_config_sweep.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_config_sweep.cpp.o.d"
  "/root/repo/tests/test_damping.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_damping.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_damping.cpp.o.d"
  "/root/repo/tests/test_dsl.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_dsl.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_dsl.cpp.o.d"
  "/root/repo/tests/test_exec.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_exec.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_exec.cpp.o.d"
  "/root/repo/tests/test_exec_features.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_exec_features.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_exec_features.cpp.o.d"
  "/root/repo/tests/test_field.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_field.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_field.cpp.o.d"
  "/root/repo/tests/test_functions.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_functions.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_functions.cpp.o.d"
  "/root/repo/tests/test_fusion_fuzz.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_fusion_fuzz.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_fusion_fuzz.cpp.o.d"
  "/root/repo/tests/test_fv3.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_fv3.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_fv3.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_latlon_serialization.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_latlon_serialization.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_latlon_serialization.cpp.o.d"
  "/root/repo/tests/test_lint_json.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_lint_json.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_lint_json.cpp.o.d"
  "/root/repo/tests/test_orch.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_orch.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_orch.cpp.o.d"
  "/root/repo/tests/test_perf.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_perf.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_perf.cpp.o.d"
  "/root/repo/tests/test_sched.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_sched.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_sched.cpp.o.d"
  "/root/repo/tests/test_tune.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_tune.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_tune.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_xform.cpp" "tests/CMakeFiles/cyclone_tests.dir/test_xform.cpp.o" "gcc" "tests/CMakeFiles/cyclone_tests.dir/test_xform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cyclone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/cyclone_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/cyclone_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/fv3/CMakeFiles/cyclone_fv3.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cyclone_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
