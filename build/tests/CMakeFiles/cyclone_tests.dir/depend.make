# Empty dependencies file for cyclone_tests.
# This may be replaced when dependencies are built.
