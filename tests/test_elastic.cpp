#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "comm/elastic.hpp"
#include "comm/simcomm.hpp"
#include "comm/verify_elastic.hpp"
#include "core/util/rng.hpp"
#include "core/verify/corpus.hpp"
#include "core/verify/verify.hpp"
#include "grid/partitioner.hpp"

namespace cyclone::comm {
namespace {

std::vector<exec::LaunchDomain> domains_for(const grid::Partitioner& part, int nk) {
  std::vector<exec::LaunchDomain> doms;
  for (int r = 0; r < part.num_ranks(); ++r) {
    const auto info = part.info(r);
    exec::LaunchDomain dom{info.ni, info.nj, nk};
    dom.gi0 = info.i0;
    dom.gj0 = info.j0;
    dom.gni = part.n();
    dom.gnj = part.n();
    doms.push_back(dom);
  }
  return doms;
}

std::vector<FieldCatalog> seeded_catalogs(const ir::Program& program,
                                          const std::vector<exec::LaunchDomain>& doms,
                                          uint64_t seed) {
  std::vector<FieldCatalog> cats;
  cats.reserve(doms.size());
  for (size_t r = 0; r < doms.size(); ++r) {
    cats.push_back(verify::make_test_catalog(program, program, doms[r], Rng::mix(seed, r)));
  }
  return cats;
}

std::vector<RankDomain> bind(std::vector<FieldCatalog>& cats,
                             const std::vector<exec::LaunchDomain>& doms) {
  std::vector<RankDomain> ranks;
  for (size_t r = 0; r < cats.size(); ++r) ranks.push_back(RankDomain{&cats[r], doms[r]});
  return ranks;
}

/// Static-membership lockstep reference: run `steps` passes and return the
/// assembled global owned cells of every field.
std::vector<std::pair<std::string, std::vector<double>>> reference_globals(
    const ir::Program& program, int n, int nranks, int nk, int halo_width, uint64_t seed,
    int steps) {
  const grid::Partitioner part = grid::Partitioner::for_ranks(n, nranks);
  const HaloUpdater halo(part, halo_width);
  const auto doms = domains_for(part, nk);
  auto cats = seeded_catalogs(program, doms, seed);
  auto ranks = bind(cats, doms);
  SimComm sim(part.num_ranks());
  for (int t = 0; t < steps; ++t) run_lockstep_step(program, halo, ranks, sim);
  std::vector<std::pair<std::string, std::vector<double>>> out;
  for (const auto& name : cats[0].names())
    out.emplace_back(name, assemble_owned(part, ranks, name));
  return out;
}

void expect_bitwise_vs_reference(
    ElasticRuntime& ert,
    const std::vector<std::pair<std::string, std::vector<double>>>& ref) {
  for (const auto& [name, want] : ref) {
    const auto got = ert.assemble(name);
    ASSERT_EQ(want.size(), got.size()) << name;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(verify::ulp_distance(want[i], got[i]), 0.0)
          << name << " diverges at flat index " << i;
    }
  }
}

// ---- Membership plan parsing ----------------------------------------------

TEST(MembershipPlan, ParsesScript) {
  const MembershipPlan plan = MembershipPlan::parse("2:6,5:24");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].at_step, 2);
  EXPECT_EQ(plan.events[0].target_ranks, 6);
  EXPECT_EQ(plan.events[1].at_step, 5);
  EXPECT_EQ(plan.events[1].target_ranks, 24);
  EXPECT_TRUE(MembershipPlan::parse("").empty());
}

TEST(MembershipPlan, RejectsMalformedScripts) {
  EXPECT_THROW(MembershipPlan::parse("2:6,nope"), std::exception);
  EXPECT_THROW(MembershipPlan::parse("2"), std::exception);
  EXPECT_THROW(MembershipPlan::parse("2:6:7"), std::exception);
  EXPECT_THROW(MembershipPlan::parse("-1:6"), std::exception);
}

// ---- Fault-plan re-keying --------------------------------------------------

TEST(RekeyPlan, RemapsRankScopedFieldsModuloRoster) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.25;
  plan.failure = FaultPlan::Failure::Crash;
  plan.fail_rank = 20;
  plan.only_src = 17;
  const FaultPlan out = rekey_plan(plan, 6, /*clear_failure=*/false);
  EXPECT_EQ(out.seed, 42u);
  EXPECT_EQ(out.drop_rate, 0.25);
  EXPECT_EQ(out.failure, FaultPlan::Failure::Crash);
  EXPECT_EQ(out.fail_rank, 20 % 6);
  EXPECT_EQ(out.only_src, 17 % 6);
}

TEST(RekeyPlan, ClearFailureDropsOneShotCrashButKeepsMessageFaults) {
  FaultPlan plan;
  plan.drop_rate = 0.1;
  plan.failure = FaultPlan::Failure::Crash;
  plan.fail_rank = 3;
  const FaultPlan out = rekey_plan(plan, 12, /*clear_failure=*/true);
  EXPECT_EQ(out.failure, FaultPlan::Failure::None);
  EXPECT_EQ(out.fail_rank, -1);
  EXPECT_EQ(out.drop_rate, 0.1);
}

// ---- Checkpoint retention --------------------------------------------------

TEST(MemoryCheckpointStore, KeepsOnlyLastKSnapshotsOldestFirst) {
  const ir::Program p = verify::make_elastic_program(1);
  const grid::Partitioner part = grid::Partitioner::for_ranks(6, 6);
  const auto doms = domains_for(part, 2);
  auto cats = seeded_catalogs(p, doms, 7);
  auto ranks = bind(cats, doms);

  MemoryCheckpointStore store(2);
  store.save(0, ranks);
  store.save(1, ranks);
  EXPECT_EQ(store.retained(), 2);
  store.save(2, ranks);
  EXPECT_EQ(store.retained(), 2);
  EXPECT_EQ(store.retained_steps(), (std::vector<long>{1, 2}));
  EXPECT_EQ(store.restore(ranks), 2);
}

TEST(ElasticCheckpointStore, EvictsOldestCompleteSnapshots) {
  const ir::Program p = verify::make_elastic_program(1);
  const grid::Partitioner part = grid::Partitioner::for_ranks(6, 6);
  const auto doms = domains_for(part, 2);
  auto cats = seeded_catalogs(p, doms, 11);
  auto ranks = bind(cats, doms);

  ElasticCheckpointStore store(2);
  store.set_roster(part);
  for (long s = 0; s < 4; ++s) store.save(s, ranks);
  EXPECT_EQ(store.retained(), 2);
  EXPECT_EQ(store.partials(), 0);
  EXPECT_EQ(store.retained_steps(), (std::vector<long>{2, 3}));
  EXPECT_EQ(store.restore(ranks), 3);
}

TEST(ElasticCheckpointStore, CrashDuringMigrationLeavesPartialThatGcReclaims) {
  const ir::Program p = verify::make_elastic_program(1);
  const grid::Partitioner part = grid::Partitioner::for_ranks(6, 6);
  const auto doms = domains_for(part, 2);
  auto cats = seeded_catalogs(p, doms, 13);
  auto ranks = bind(cats, doms);

  ElasticCheckpointStore store(3);
  store.set_roster(part);
  store.save(0, ranks);
  ASSERT_EQ(store.retained(), 1);

  // Model a rank dying mid-migration: its catalog lacks a field the
  // assembly walk expects, so save() throws with the snapshot half-built.
  FieldCatalog broken;
  std::vector<RankDomain> torn = ranks;
  torn[3].catalog = &broken;
  EXPECT_THROW(store.save(1, torn), std::exception);
  EXPECT_EQ(store.retained(), 1);
  EXPECT_EQ(store.partials(), 1);

  // restore() skips the partial and lands on the last complete snapshot.
  EXPECT_EQ(store.restore(ranks), 0);
  store.gc();
  EXPECT_EQ(store.partials(), 0);
  EXPECT_EQ(store.retained(), 1);
}

TEST(ElasticCheckpointStore, MigratesStateAcrossRosters) {
  const ir::Program p = verify::make_elastic_program(1);
  const int n = 12, nk = 3;
  const grid::Partitioner big = grid::Partitioner::for_ranks(n, 24);
  const auto big_doms = domains_for(big, nk);
  auto big_cats = seeded_catalogs(p, big_doms, 17);
  auto big_ranks = bind(big_cats, big_doms);
  const auto want = assemble_owned(big, big_ranks, "q");

  ElasticCheckpointStore store(2);
  store.set_roster(big);
  store.save(5, big_ranks);

  // Scatter onto a 6-rank roster with empty catalogs: restore() must create
  // every field from the snapshot's shape metadata and fill owned cells.
  const grid::Partitioner small = grid::Partitioner::for_ranks(n, 6);
  const auto small_doms = domains_for(small, nk);
  std::vector<FieldCatalog> small_cats(small_doms.size());
  auto small_ranks = bind(small_cats, small_doms);
  store.set_roster(small);
  EXPECT_EQ(store.restore(small_ranks), 5);

  const auto got = assemble_owned(small, small_ranks, "q");
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(verify::ulp_distance(want[i], got[i]), 0.0) << "q differs at " << i;
}

// ---- Load balancer ---------------------------------------------------------

TEST(LoadBalancer, TriggersOnlyPastWarmupAndThreshold) {
  LoadBalancerOptions opt;
  opt.enabled = true;
  opt.trigger_ratio = 1.5;
  opt.warmup_steps = 2;
  LoadBalancer lb(opt);
  lb.reset(4);
  lb.observe({1.0, 1.0, 1.0, 1.0});
  EXPECT_FALSE(lb.should_rebalance());  // balanced
  lb.observe({1.0, 1.0, 1.0, 4.0});
  lb.observe({1.0, 1.0, 1.0, 4.0});
  EXPECT_GT(lb.imbalance_ratio(), 1.5);
  EXPECT_TRUE(lb.should_rebalance());
  lb.reset(4);  // roster change restarts the warmup
  EXPECT_FALSE(lb.should_rebalance());
}

// ---- Elastic runs ----------------------------------------------------------

TEST(Elastic, ShrinkGrowRoundTripIsBitwiseVsLockstep) {
  verify::ElasticVerifyOptions opt;
  opt.backends = {"interp"};
  opt.seeds = 2;
  opt.steps = 6;
  opt.initial_ranks = 24;
  opt.shrink_ranks = 6;
  opt.shrink_at = 2;
  opt.grow_at = 4;
  opt.include_kill_rejoin = false;
  const auto report =
      verify::check_elastic_agrees(verify::make_elastic_program(), 12, 3, 3, opt);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

TEST(Elastic, KillThenRejoinUnderChaosIsBitwiseVsLockstep) {
  verify::ElasticVerifyOptions opt;
  opt.backends = {"interp"};
  opt.seeds = 2;
  opt.steps = 6;
  opt.initial_ranks = 12;
  opt.shrink_ranks = 6;
  opt.shrink_at = 2;
  opt.grow_at = 4;
  opt.crash_step = 2;
  opt.include_kill_rejoin = true;
  const auto report =
      verify::check_elastic_agrees(verify::make_elastic_program(), 12, 3, 3, opt);
  EXPECT_TRUE(report.equivalent) << report.summary();
}

TEST(Elastic, InvalidRosterIsRejectedMidRunWithStructuredError) {
  const ir::Program p = verify::make_elastic_program();
  const int n = 12, nk = 3, steps = 5;
  const uint64_t seed = 0xBADC0DE;
  const grid::Partitioner part = grid::Partitioner::for_ranks(n, 12);
  const auto doms = domains_for(part, nk);
  auto cats = seeded_catalogs(p, doms, seed);

  ElasticOptions eo;
  eo.plan.events = {{1, 10}, {3, 6}};  // 10 is not a multiple of 6 -> rejected
  ElasticRuntime ert(p, nk, 3, part, std::move(cats), eo);
  const ElasticReport report = ert.run(steps);

  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.rejected_resizes, 1);
  EXPECT_EQ(report.resizes, 1);  // only the valid shrink was honored
  ASSERT_EQ(report.resize_log.size(), 2u);
  EXPECT_NE(report.resize_log[0].error.find("multiple of 6"), std::string::npos)
      << report.resize_log[0].error;
  EXPECT_EQ(ert.num_ranks(), 6);
  EXPECT_EQ(ert.halo().pool_outstanding(), 0);

  const auto ref = reference_globals(p, n, 12, nk, 3, seed, steps);
  expect_bitwise_vs_reference(ert, ref);
}

TEST(Elastic, ResizeToMinimumRosterRuns) {
  const ir::Program p = verify::make_elastic_program();
  const int n = 12, nk = 2, steps = 4;
  const uint64_t seed = 0x600D;
  const grid::Partitioner part = grid::Partitioner::for_ranks(n, 24);
  const auto doms = domains_for(part, nk);
  auto cats = seeded_catalogs(p, doms, seed);

  ElasticOptions eo;
  eo.plan.events = {{1, 6}};
  ElasticRuntime ert(p, nk, 3, part, std::move(cats), eo);
  const ElasticReport report = ert.run(steps);

  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.resizes, 1);
  EXPECT_EQ(ert.num_ranks(), 6);
  ASSERT_EQ(report.resize_log.size(), 1u);
  EXPECT_EQ(report.resize_log[0].from_ranks, 24);
  EXPECT_EQ(report.resize_log[0].to_ranks, 6);
  EXPECT_GE(report.resize_log[0].total_seconds(), 0.0);
  EXPECT_EQ(ert.halo().pool_outstanding(), 0);

  const auto ref = reference_globals(p, n, 24, nk, 3, seed, steps);
  expect_bitwise_vs_reference(ert, ref);
}

TEST(Elastic, InjectedImbalanceTriggersRebalanceAndStaysBitwise) {
  // One trip per pass: most of the straggler's spin lands after its halo
  // sends, so its wall-time EWMA diverges from the ranks that only wait on
  // the exchange (with more trips the whole roster inherits the delay).
  const ir::Program p = verify::make_elastic_program(1);
  const int n = 6, nk = 2, steps = 8;
  const uint64_t seed = 0x51077;
  const grid::Partitioner part = grid::Partitioner::for_ranks(n, 6);
  const auto doms = domains_for(part, nk);
  auto cats = seeded_catalogs(p, doms, seed);

  ElasticOptions eo;
  eo.runtime.imbalance.slow_rank = 2;
  eo.runtime.imbalance.extra_us_per_state = 2000;
  eo.balancer.enabled = true;
  eo.balancer.trigger_ratio = 1.5;
  eo.balancer.warmup_steps = 2;
  ElasticRuntime ert(p, nk, 3, part, std::move(cats), eo);
  const ElasticReport report = ert.run(steps);

  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_GE(report.rebalances, 1);
  const bool has_imbalance_record =
      std::any_of(report.resize_log.begin(), report.resize_log.end(),
                  [](const ResizeRecord& r) { return r.trigger == "imbalance"; });
  EXPECT_TRUE(has_imbalance_record);
  EXPECT_EQ(ert.halo().pool_outstanding(), 0);

  // The spin is wall-time only: numerics must match the unperturbed run.
  const auto ref = reference_globals(p, n, 6, nk, 3, seed, steps);
  expect_bitwise_vs_reference(ert, ref);
}

TEST(Elastic, ReportJsonCarriesResizeLogChannelAndHealth) {
  const ir::Program p = verify::make_elastic_program();
  const int n = 12, nk = 2;
  const grid::Partitioner part = grid::Partitioner::for_ranks(n, 12);
  const auto doms = domains_for(part, nk);
  auto cats = seeded_catalogs(p, doms, 0xFEED);

  ElasticOptions eo;
  eo.plan.events = {{1, 6}, {2, 12}};
  ElasticRuntime ert(p, nk, 3, part, std::move(cats), eo);
  const ElasticReport report = ert.run(4);
  ASSERT_TRUE(report.ok) << report.failure;
  ASSERT_EQ(report.health.size(), 12u);
  for (const auto& h : report.health) {
    EXPECT_GT(h.heartbeats, 0);
    EXPECT_GT(h.ewma_step_seconds, 0.0);
    EXPECT_EQ(h.last_seen_step, 3);
  }

  const std::string json = elastic_report_to_json(report);
  for (const char* key :
       {"\"ok\"", "\"resizes\"", "\"resize_log\"", "\"trigger\"", "\"snapshot_seconds\"",
        "\"rebuild_seconds\"", "\"refresh_seconds\"", "\"channel\"", "\"health\"",
        "\"last_seen_step\"", "\"ewma_step_seconds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

// ---- RunReport health (satellite: per-rank heartbeat observability) --------

TEST(RunReport, ExposesPerRankHealthAndSerializesToJson) {
  const ir::Program p = verify::make_elastic_program(1);
  const grid::Partitioner part = grid::Partitioner::for_ranks(6, 6);
  const HaloUpdater halo(part, 3);
  const auto doms = domains_for(part, 2);
  auto cats = seeded_catalogs(p, doms, 0xCAFE);
  auto ranks = bind(cats, doms);

  ConcurrentRuntime rt(p, halo, std::move(ranks));
  const RunReport report = rt.run(3);
  ASSERT_TRUE(report.ok) << report.failure;
  ASSERT_EQ(report.health.size(), 6u);
  for (const auto& h : report.health) {
    EXPECT_EQ(h.last_seen_step, 2);
    EXPECT_GT(h.heartbeats, 0);
    EXPECT_GT(h.ewma_step_seconds, 0.0);
  }

  const std::string json = run_report_to_json(report);
  for (const char* key : {"\"ok\"", "\"channel\"", "\"health\"", "\"rank\"",
                          "\"last_seen_step\"", "\"heartbeats\"", "\"ewma_step_seconds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

// ---- Corpus checksum invariance across a resize round-trip -----------------

TEST(Elastic, GoldenChecksumInvariantAcross24To6To24) {
  const ir::Program p = verify::make_elastic_program();
  const int n = 12, nk = 3, steps = 6;
  const uint64_t seed = 0x601DEA;
  const grid::Partitioner part = grid::Partitioner::for_ranks(n, 24);
  const auto doms = domains_for(part, nk);
  auto cats = seeded_catalogs(p, doms, seed);

  ElasticOptions eo;
  eo.plan.events = {{2, 6}, {4, 24}};
  ElasticRuntime ert(p, nk, 3, part, std::move(cats), eo);
  const ElasticReport report = ert.run(steps);
  ASSERT_TRUE(report.ok) << report.failure;
  ASSERT_EQ(report.resizes, 2);

  auto views = [&](const grid::Partitioner& pt, const std::vector<RankDomain>& rks) {
    std::vector<verify::RankView> vs;
    for (int r = 0; r < pt.num_ranks(); ++r) {
      const auto info = pt.info(r);
      vs.push_back(verify::RankView{rks[static_cast<size_t>(r)].catalog, info.tile, info.i0,
                                    info.j0, info.ni, info.nj});
    }
    return vs;
  };

  // Static 24-rank lockstep reference, assembled through the same corpus
  // machinery the golden files use.
  const grid::Partitioner ref_part = grid::Partitioner::for_ranks(n, 24);
  const HaloUpdater ref_halo(ref_part, 3);
  auto ref_cats = seeded_catalogs(p, doms, seed);
  auto ref_ranks = bind(ref_cats, doms);
  SimComm sim(ref_part.num_ranks());
  for (int t = 0; t < steps; ++t) run_lockstep_step(p, ref_halo, ref_ranks, sim);

  const verify::GoldenField want =
      verify::assemble_field("q", grid::kNumFaces, n, views(ref_part, ref_ranks));
  const verify::GoldenField got =
      verify::assemble_field("q", grid::kNumFaces, n, views(ert.partitioner(), ert.rank_domains()));
  EXPECT_EQ(want.checksum, got.checksum);
  EXPECT_EQ(want, got);
}

}  // namespace
}  // namespace cyclone::comm
