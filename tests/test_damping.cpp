#include <gtest/gtest.h>

#include <cmath>

#include "baseline/kernels.hpp"
#include "core/exec/tape.hpp"
#include "core/util/rng.hpp"
#include "fv3/stencils/damping.hpp"

namespace cyclone::fv3 {
namespace {

FvConfig cfg_small() {
  FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 10;
  cfg.ntracers = 1;
  return cfg;
}

// ---- Rayleigh damping -------------------------------------------------------

struct RayleighSetup {
  FieldCatalog cat;
  exec::LaunchDomain dom{6, 6, 10};
  FvConfig cfg = cfg_small();

  RayleighSetup() {
    for (const char* name : {"u", "v", "w"}) cat.create(name, 6, 6, 10).fill(10.0);
    auto& pe = cat.create("pe", 6, 6, 11);
    // Interface pressures from 300 Pa (top) to 1e5 Pa (surface).
    pe.fill_with([&](int, int, int k) { return 300.0 + k * (1.0e5 - 300.0) / 10.0; });
  }

  void run(double dt) {
    exec::StencilArgs args;
    args.params["dt"] = dt;
    args.params["rf_cutoff"] = cfg.rf_cutoff;
    args.params["rf_coeff"] = cfg.rf_coeff;
    exec::CompiledStencil(build_rayleigh_damping()).run(cat, args, dom);
  }
};

TEST(RayleighDamping, DampsOnlyAboveCutoff) {
  RayleighSetup s;
  s.run(600.0);
  // Top layer: mid pressure ~5285 Pa < 8000 cutoff -> damped.
  EXPECT_LT(s.cat.at("u")(3, 3, 0), 10.0);
  EXPECT_LT(s.cat.at("w")(3, 3, 0), 10.0);
  // Lower layers: untouched.
  for (int k = 1; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(s.cat.at("u")(3, 3, k), 10.0) << "level " << k;
  }
}

TEST(RayleighDamping, NeverAmplifiesOrFlipsSign) {
  RayleighSetup s;
  s.cat.at("u").fill(-7.0);
  s.run(3600.0);
  for (int k = 0; k < 10; ++k) {
    EXPECT_LE(std::abs(s.cat.at("u")(2, 2, k)), 7.0 + 1e-12);
    EXPECT_LE(s.cat.at("u")(2, 2, k), 0.0);  // sign preserved
  }
}

TEST(RayleighDamping, MatchesBaseline) {
  RayleighSetup a, b;
  Rng rng(8);
  a.cat.at("u").fill_with([&](int, int, int) { return rng.uniform(-30, 30); });
  b.cat.at("u").copy_from(a.cat.at("u"));
  a.run(450.0);
  baseline::rayleigh_damping(b.cat, b.dom, b.cfg, 450.0);
  EXPECT_LT(FieldD::max_abs_diff(a.cat.at("u"), b.cat.at("u")), 1e-13);
  EXPECT_LT(FieldD::max_abs_diff(a.cat.at("w"), b.cat.at("w")), 1e-13);
}

// ---- fillz ------------------------------------------------------------------

struct FillzSetup {
  FieldCatalog cat;
  exec::LaunchDomain dom{5, 5, 8};

  FillzSetup() {
    cat.create("q", 5, 5, 8);
    cat.create("delp", 5, 5, 8).fill(1000.0);
  }
};

TEST(Fillz, RemovesNegativesConservingColumnMass) {
  FillzSetup s;
  Rng rng(11);
  s.cat.at("q").fill_with([&](int, int, int) { return rng.uniform(-0.2, 1.0); });

  // Column tracer mass before (only columns that can be fully filled stay
  // exactly conservative; with mostly-positive values this holds).
  std::vector<double> mass;
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i < 5; ++i) {
      double m = 0;
      for (int k = 0; k < 8; ++k) m += s.cat.at("q")(i, j, k) * s.cat.at("delp")(i, j, k);
      mass.push_back(m);
    }

  exec::CompiledStencil(build_fillz()).run(s.cat, s.dom);

  size_t idx = 0;
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i < 5; ++i) {
      double m = 0;
      for (int k = 0; k < 8; ++k) {
        EXPECT_GE(s.cat.at("q")(i, j, k), 0.0) << "negative survived filling";
        m += s.cat.at("q")(i, j, k) * s.cat.at("delp")(i, j, k);
      }
      // Filling borrows downward; columns with enough positive mass below
      // conserve exactly, otherwise they only *gain* (bottom clip).
      EXPECT_GE(m, mass[idx] - 1e-9 * std::abs(mass[idx]));
      ++idx;
    }
}

TEST(Fillz, PositiveColumnsUntouched) {
  FillzSetup s;
  s.cat.at("q").fill_with([](int i, int j, int k) { return 0.1 * (i + j + k + 1); });
  FieldD before("b", 5, 5, 8);
  before.copy_from(s.cat.at("q"));
  exec::CompiledStencil(build_fillz()).run(s.cat, s.dom);
  EXPECT_EQ(FieldD::max_abs_diff(before, s.cat.at("q")), 0.0);
}

TEST(Fillz, MatchesBaseline) {
  FillzSetup a, b;
  Rng rng(13);
  a.cat.at("q").fill_with([&](int, int, int) { return rng.uniform(-0.5, 1.0); });
  b.cat.at("q").copy_from(a.cat.at("q"));
  exec::StencilArgs args;
  args.bind["q"] = "q";
  exec::CompiledStencil(build_fillz()).run(a.cat, args, a.dom);
  baseline::fillz(b.cat, b.dom, "q");
  EXPECT_LT(FieldD::max_abs_diff(a.cat.at("q"), b.cat.at("q")), 1e-13);
}

// ---- del2_cubed -------------------------------------------------------------

TEST(Del2Cubed, SmoothsTowardMean) {
  FieldCatalog cat;
  cat.create("q", 8, 8, 2, HaloSpec{1, 1}).fill(0.0);
  cat.at("q")(4, 4, 0) = 1.0;
  cat.at("q")(4, 4, 1) = 1.0;
  cat.create("rdx", 8, 8, 1, HaloSpec{1, 1}).fill(1.0);
  cat.create("rdy", 8, 8, 1, HaloSpec{1, 1}).fill(1.0);

  exec::StencilArgs args;
  args.params["cd"] = 0.1;
  exec::CompiledStencil(build_del2_cubed()).run(cat, args, exec::LaunchDomain{8, 8, 2});

  EXPECT_LT(cat.at("q")(4, 4, 0), 1.0);   // peak decays
  EXPECT_GT(cat.at("q")(3, 4, 0), 0.0);   // neighbors gain
  // Interior sum conserved away from boundaries (symmetric operator).
  double total = 0;
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 8; ++i) total += cat.at("q")(i, j, 0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Del2Cubed, MatchesBaseline) {
  FieldCatalog a, b;
  Rng rng(14);
  for (FieldCatalog* cat : {&a, &b}) {
    cat->create("q", 8, 8, 3, HaloSpec{1, 1});
    cat->create("rdx", 8, 8, 1, HaloSpec{1, 1}).fill(0.7);
    cat->create("rdy", 8, 8, 1, HaloSpec{1, 1}).fill(0.9);
  }
  a.at("q").fill_with([&](int, int, int) { return rng.uniform(0, 1); });
  b.at("q").copy_from(a.at("q"));
  const exec::LaunchDomain dom{8, 8, 3};
  exec::StencilArgs args;
  args.params["cd"] = 0.05;
  exec::CompiledStencil(build_del2_cubed()).run(a, args, dom);
  baseline::del2_cubed(b, dom, "q", 0.05);
  EXPECT_LT(FieldD::max_abs_diff(a.at("q"), b.at("q")), 1e-14);
}

}  // namespace
}  // namespace cyclone::fv3
