#include <gtest/gtest.h>

#include "core/field/catalog.hpp"
#include "core/field/field.hpp"

namespace cyclone {
namespace {

TEST(FieldShape, BasicDims) {
  FieldShape s(10, 20, 30, HaloSpec{3, 2});
  EXPECT_EQ(s.ni(), 10);
  EXPECT_EQ(s.ext_i(), 16);
  EXPECT_EQ(s.ext_j(), 24);
  EXPECT_EQ(s.ext_k(), 30);
  EXPECT_GE(s.alloc_elems(), s.volume_with_halo());
}

TEST(FieldShape, KjiLayoutHasUnitIStride) {
  FieldShape s(8, 8, 8, HaloSpec{1, 1}, Layout::KJI);
  EXPECT_EQ(s.stride_i(), 1);
  EXPECT_GT(s.stride_j(), s.stride_i());
  EXPECT_GT(s.stride_k(), s.stride_j());
}

TEST(FieldShape, IjkLayoutHasUnitKStride) {
  FieldShape s(8, 8, 8, HaloSpec{1, 1}, Layout::IJK);
  EXPECT_EQ(s.stride_k(), 1);
  EXPECT_GT(s.stride_j(), s.stride_k());
  EXPECT_GT(s.stride_i(), s.stride_j());
}

TEST(FieldShape, OriginIsAligned) {
  // Fig. 8 of the paper: the first non-halo element must be aligned.
  for (int align : {1, 2, 4, 8, 16}) {
    for (auto layout : {Layout::KJI, Layout::IJK, Layout::KIJ}) {
      FieldShape s(13, 7, 5, HaloSpec{3, 3}, layout, align);
      EXPECT_EQ(s.origin_offset() % static_cast<size_t>(align), 0u)
          << "align=" << align << " layout=" << layout_name(layout);
    }
  }
}

TEST(FieldShape, RowsAlignedViaStridePadding) {
  FieldShape s(13, 7, 5, HaloSpec{3, 3}, Layout::KJI, 8);
  // With the fastest (i) extent padded to a multiple of 8, consecutive j
  // rows keep the same alignment class.
  EXPECT_EQ(s.stride_j() % 8, 0);
}

TEST(FieldShape, IndexDistinctWithinBounds) {
  FieldShape s(4, 3, 2, HaloSpec{1, 1});
  std::set<size_t> seen;
  for (int k = 0; k < 2; ++k)
    for (int j = -1; j < 4; ++j)
      for (int i = -1; i < 5; ++i) EXPECT_TRUE(seen.insert(s.index(i, j, k)).second);
  for (size_t idx : seen) EXPECT_LT(idx, s.alloc_elems());
}

TEST(FieldShape, RejectsBadArgs) {
  EXPECT_THROW(FieldShape(0, 1, 1), Error);
  EXPECT_THROW(FieldShape(1, 1, 1, HaloSpec{-1, 0}), Error);
  EXPECT_THROW(FieldShape(1, 1, 1, HaloSpec{}, Layout::KJI, 0), Error);
}

TEST(Field3D, ReadWriteRoundTrip) {
  FieldD f("q", 5, 4, 3, HaloSpec{2, 2});
  f(0, 0, 0) = 1.5;
  f(-2, -2, 0) = 2.5;
  f(4, 3, 2) = 3.5;
  f(6, 5, 2) = 4.5;  // far halo corner
  EXPECT_EQ(f(0, 0, 0), 1.5);
  EXPECT_EQ(f(-2, -2, 0), 2.5);
  EXPECT_EQ(f(4, 3, 2), 3.5);
  EXPECT_EQ(f(6, 5, 2), 4.5);
}

TEST(Field3D, FillWithCoversHalo) {
  FieldD f("q", 3, 3, 2, HaloSpec{1, 1});
  f.fill_with([](int i, int j, int k) { return 100.0 * i + 10.0 * j + k; });
  EXPECT_EQ(f(-1, -1, 0), -110.0);
  EXPECT_EQ(f(3, 3, 1), 331.0);
}

TEST(Field3D, LayoutDoesNotChangeLogicalValues) {
  auto fill = [](FieldD& f) {
    f.fill_with([](int i, int j, int k) { return i + 1000.0 * j + 1e6 * k; });
  };
  FieldD a("a", 6, 5, 4, HaloSpec{2, 2}, Layout::KJI);
  FieldD b("b", 6, 5, 4, HaloSpec{2, 2}, Layout::IJK);
  fill(a);
  fill(b);
  for (int k = 0; k < 4; ++k)
    for (int j = -2; j < 7; ++j)
      for (int i = -2; i < 8; ++i) EXPECT_EQ(a(i, j, k), b(i, j, k));
}

TEST(Field3D, MaxAbsDiff) {
  FieldD a("a", 4, 4, 2), b("b", 4, 4, 2);
  a.fill(1.0);
  b.fill(1.0);
  EXPECT_EQ(FieldD::max_abs_diff(a, b), 0.0);
  b(2, 3, 1) = 4.0;
  EXPECT_EQ(FieldD::max_abs_diff(a, b), 3.0);
}

TEST(Field3D, MaxAbsDiffIgnoresHaloByDefault) {
  FieldD a("a", 4, 4, 2, HaloSpec{1, 1}), b("b", 4, 4, 2, HaloSpec{1, 1});
  a.fill(0.0);
  b.fill(0.0);
  b(-1, 0, 0) = 9.0;
  EXPECT_EQ(FieldD::max_abs_diff(a, b), 0.0);
  EXPECT_EQ(FieldD::max_abs_diff(a, b, /*include_halo=*/true), 9.0);
}

TEST(Field3D, CopyFromRequiresSameShape) {
  FieldD a("a", 4, 4, 2), b("b", 4, 4, 2), c("c", 5, 4, 2);
  b.fill(7.0);
  a.copy_from(b);
  EXPECT_EQ(a(1, 1, 1), 7.0);
  EXPECT_THROW(a.copy_from(c), Error);
}

#ifdef CYCLONE_BOUNDS_CHECK
TEST(Field3D, BoundsCheckCatchesOverrun) {
  FieldD f("q", 3, 3, 2, HaloSpec{1, 1});
  EXPECT_THROW((void)f(5, 0, 0), Error);
  EXPECT_THROW((void)f(0, 0, 2), Error);
  EXPECT_THROW((void)f(0, -2, 0), Error);
}
#endif

TEST(FieldCatalog, CreateAndLookup) {
  FieldCatalog cat;
  cat.create("u", 4, 4, 3);
  EXPECT_TRUE(cat.contains("u"));
  EXPECT_FALSE(cat.contains("v"));
  cat.at("u")(0, 0, 0) = 2.0;
  EXPECT_EQ(cat.at("u")(0, 0, 0), 2.0);
  EXPECT_THROW((void)cat.at("v"), Error);
}

TEST(FieldCatalog, AliasBindsExternalField) {
  FieldCatalog cat;
  FieldD external("state_u", 4, 4, 3);
  external(1, 1, 1) = 5.0;
  cat.alias("u", external);
  EXPECT_EQ(cat.at("u")(1, 1, 1), 5.0);
  cat.at("u")(1, 1, 1) = 6.0;
  EXPECT_EQ(external(1, 1, 1), 6.0);
}

TEST(FieldCatalog, OwnedBytesExcludesAliases) {
  FieldCatalog cat;
  cat.create("a", 4, 4, 4, HaloSpec{0, 0});
  const size_t bytes_one = cat.owned_bytes();
  EXPECT_GE(bytes_one, 4u * 4u * 4u * sizeof(double));
  FieldD ext("x", 100, 100, 10);
  cat.alias("x", ext);
  EXPECT_EQ(cat.owned_bytes(), bytes_one);
}

TEST(FieldCatalog, RemoveErasesBoth) {
  FieldCatalog cat;
  cat.create("a", 2, 2, 1);
  cat.remove("a");
  EXPECT_FALSE(cat.contains("a"));
}

}  // namespace
}  // namespace cyclone
