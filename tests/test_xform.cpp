#include <gtest/gtest.h>

#include "core/dsl/analysis.hpp"
#include "core/dsl/builder.hpp"
#include "core/exec/tape.hpp"
#include "core/ir/expand.hpp"
#include "core/util/rng.hpp"
#include "core/xform/expr_rewrite.hpp"
#include "core/xform/fusion.hpp"
#include "core/xform/passes.hpp"

namespace cyclone::xform {
namespace {

using dsl::E;
using dsl::FieldVar;
using dsl::StencilBuilder;

TEST(ExprRewrite, ShiftMovesAllAccesses) {
  FieldVar a("a"), b("b");
  const auto e = (a(1, 0) + b(0, -1, 2)).expr();
  const auto shifted = shift_expr(e, 2, 3, -1);
  EXPECT_EQ(dsl::to_string(shifted), "(a[3,3,-1] + b[2,2,1])");
}

TEST(ExprRewrite, ShiftZeroIsIdentity) {
  FieldVar a("a");
  const auto e = a(1, 2).expr();
  EXPECT_EQ(shift_expr(e, 0, 0, 0), e);  // shares the node
}

TEST(ExprRewrite, SubstituteInlinesProducer) {
  FieldVar flux("flux"), q("q");
  const auto consumer = (flux(1, 0) - flux(0, 0)).expr();
  const auto producer = (q(0, 0) * 2.0).expr();
  const auto inlined = substitute_accesses(
      consumer, [&](const std::string& name, const dsl::Offset& off)
                    -> std::optional<dsl::ExprP> {
        if (name != "flux") return std::nullopt;
        return shift_expr(producer, off.i, off.j, off.k);
      });
  EXPECT_EQ(dsl::to_string(inlined), "((q[1,0,0] * 2) - (q * 2))");
}

TEST(ExprRewrite, PropagateParams) {
  FieldVar a("a");
  dsl::ParamVar dt("dt");
  const auto e = (E(a) * E(dt)).expr();
  const auto p = propagate_params(e, {{"dt", 0.5}});
  EXPECT_EQ(dsl::to_string(p), "(a * 0.5)");
  const auto untouched = propagate_params(e, {{"other", 1.0}});
  EXPECT_EQ(dsl::to_string(untouched), "(a * dt)");
}

TEST(ExprRewrite, RenameFields) {
  FieldVar a("a");
  const auto e = a(1, 0).expr();
  const auto r = rename_fields(e, {{"a", "model_a"}});
  EXPECT_EQ(dsl::to_string(r), "model_a[1,0,0]");
}

TEST(ExprRewrite, StrengthReducePowCases) {
  FieldVar x("x");
  int count = 0;
  EXPECT_EQ(dsl::to_string(strength_reduce_pow(pow(E(x), 2.0).expr(), count)), "(x * x)");
  EXPECT_EQ(dsl::to_string(strength_reduce_pow(pow(E(x), 0.5).expr(), count)), "sqrt(x)");
  EXPECT_EQ(dsl::to_string(strength_reduce_pow(pow(E(x), -2.0).expr(), count)),
            "(1 / (x * x))");
  EXPECT_EQ(dsl::to_string(strength_reduce_pow(pow(E(x), -0.5).expr(), count)),
            "(1 / sqrt(x))");
  EXPECT_EQ(count, 4);
  // Non-reducible exponents survive.
  count = 0;
  const auto kept = strength_reduce_pow(pow(E(x), 2.5).expr(), count);
  EXPECT_EQ(count, 0);
  EXPECT_EQ(count_pow(kept), 1);
}

TEST(ExprRewrite, StrengthReduceSmagorinskyPattern) {
  // The paper's exact pattern: (delpc**2 + vort**2) ** 0.5.
  FieldVar delpc("delpc"), vort("vort");
  int count = 0;
  const auto e = pow(pow(E(delpc), 2.0) + pow(E(vort), 2.0), 0.5).expr();
  const auto r = strength_reduce_pow(e, count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(count_pow(r), 0);
  EXPECT_EQ(dsl::to_string(r), "sqrt(((delpc * delpc) + (vort * vort)))");
}

TEST(ExprRewrite, StrengthReductionPreservesValues) {
  FieldVar x("x");
  StencilBuilder b1("orig"), b2("reduced");
  auto x1 = b1.field("x"), o1 = b1.field("o");
  auto x2 = b2.field("x"), o2 = b2.field("o");
  b1.parallel().full().assign(o1, pow(pow(E(x1), 2.0) + 1.0, 0.5));
  int count = 0;
  dsl::StencilFunc reduced = b1.build();
  for (auto& block : reduced.blocks())
    for (auto& iv : block.intervals)
      for (auto& stmt : iv.body) stmt.rhs = strength_reduce_pow(stmt.rhs, count);
  (void)x2;
  (void)o2;

  FieldCatalog c1, c2;
  auto& f1 = c1.create("x", 8, 8, 4);
  auto& f2 = c2.create("x", 8, 8, 4);
  c1.create("o", 8, 8, 4);
  c2.create("o", 8, 8, 4);
  Rng rng(5);
  f1.fill_with([&](int, int, int) { return rng.uniform(-3, 3); });
  f2.copy_from(f1);
  exec::CompiledStencil(b1.build()).run(c1, exec::LaunchDomain{8, 8, 4});
  exec::CompiledStencil(reduced).run(c2, exec::LaunchDomain{8, 8, 4});
  EXPECT_LT(FieldD::max_abs_diff(c1.at("o"), c2.at("o")), 1e-12);
}

TEST(ExprRewrite, FoldConstants) {
  FieldVar a("a");
  const auto e = (E(a) * (E(2.0) + E(3.0))).expr();
  EXPECT_EQ(dsl::to_string(fold_constants(e)), "(a * 5)");
  const auto sel = dsl::select(E(1.0) > E(0.0), E(a), E(7.0)).expr();
  EXPECT_EQ(dsl::to_string(fold_constants(sel)), "a");
}

// ---- Node fusion ----------------------------------------------------------

ir::SNode producer_node() {
  StencilBuilder b("producer");
  auto in = b.field("in");
  auto mid = b.field("mid");
  b.parallel().full().assign(mid, in(-1, 0) + in(1, 0));
  return ir::SNode::make_stencil("producer", b.build());
}

ir::SNode pointwise_consumer() {
  StencilBuilder b("consumer");
  auto mid = b.field("mid");
  auto out = b.field("out");
  b.parallel().full().assign(out, E(mid) * 3.0);
  return ir::SNode::make_stencil("consumer", b.build());
}

ir::SNode offset_consumer() {
  StencilBuilder b("consumer_off");
  auto mid = b.field("mid");
  auto out = b.field("out");
  b.parallel().full().assign(out, mid(1, 0) - mid(-1, 0));
  return ir::SNode::make_stencil("consumer_off", b.build());
}

void run_node(const ir::SNode& node, FieldCatalog& cat, const exec::LaunchDomain& dom) {
  exec::CompiledStencil(*node.stencil).run(cat, node.args, dom);
}

FieldCatalog make_inputs(uint64_t seed) {
  FieldCatalog cat;
  auto& in = cat.create("in", 12, 10, 4, HaloSpec{3, 3});
  cat.create("mid", 12, 10, 4, HaloSpec{3, 3});
  cat.create("out", 12, 10, 4, HaloSpec{3, 3});
  Rng rng(seed);
  in.fill_with([&](int, int, int) { return rng.uniform(-1, 1); });
  return cat;
}

TEST(Fusion, SubgraphLegalityChecks) {
  EXPECT_TRUE(can_fuse_subgraph(producer_node(), pointwise_consumer()).ok);
  EXPECT_FALSE(can_fuse_subgraph(producer_node(), offset_consumer()).ok);
  ir::SNode cb = ir::SNode::make_callback("cb", [](FieldCatalog&) {});
  EXPECT_FALSE(can_fuse_subgraph(producer_node(), cb).ok);
}

TEST(Fusion, OtfLegalityChecks) {
  EXPECT_TRUE(can_fuse_otf(producer_node(), offset_consumer()).ok);
  // No dependency at all -> nothing to fuse on the fly.
  StencilBuilder b("independent");
  auto z = b.field("z");
  b.parallel().full().assign(z, E(z) + 1.0);
  EXPECT_FALSE(can_fuse_otf(producer_node(), ir::SNode::make_stencil("i", b.build())).ok);
}

TEST(Fusion, SubgraphFusionPreservesSemantics) {
  const exec::LaunchDomain dom{12, 10, 4};
  FieldCatalog ref = make_inputs(3);
  run_node(producer_node(), ref, dom);
  run_node(pointwise_consumer(), ref, dom);

  FieldCatalog fused_cat = make_inputs(3);
  const ir::SNode fused = fuse_subgraph(producer_node(), pointwise_consumer(), "fused", {});
  run_node(fused, fused_cat, dom);

  EXPECT_EQ(FieldD::max_abs_diff(ref.at("out"), fused_cat.at("out")), 0.0);
  EXPECT_EQ(FieldD::max_abs_diff(ref.at("mid"), fused_cat.at("mid")), 0.0);
}

TEST(Fusion, SubgraphFusionWithDyingIntermediate) {
  const exec::LaunchDomain dom{12, 10, 4};
  FieldCatalog ref = make_inputs(4);
  run_node(producer_node(), ref, dom);
  run_node(pointwise_consumer(), ref, dom);

  FieldCatalog fused_cat = make_inputs(4);
  const ir::SNode fused =
      fuse_subgraph(producer_node(), pointwise_consumer(), "fused", {"mid"});
  EXPECT_TRUE(fused.stencil->is_temporary("mid"));
  run_node(fused, fused_cat, dom);
  EXPECT_EQ(FieldD::max_abs_diff(ref.at("out"), fused_cat.at("out")), 0.0);
}

TEST(Fusion, OtfFusionPreservesSemantics) {
  const exec::LaunchDomain dom{12, 10, 4};
  FieldCatalog ref = make_inputs(5);
  run_node(producer_node(), ref, dom);
  run_node(offset_consumer(), ref, dom);

  FieldCatalog fused_cat = make_inputs(5);
  const ir::SNode fused = fuse_otf(producer_node(), offset_consumer(), "otf", {"mid"});
  run_node(fused, fused_cat, dom);
  // Compare the interior: at the domain edge the *reference* reads "mid"
  // halo values the producer never computed (stale data), while the fused
  // version recomputes them — OTF is only bitwise-identical where the
  // producer's output was actually available, exactly as in DaCe.
  double interior_diff = 0;
  for (int k = 0; k < dom.nk; ++k)
    for (int j = 1; j < dom.nj - 1; ++j)
      for (int i = 1; i < dom.ni - 1; ++i)
        interior_diff = std::max(
            interior_diff, std::abs(ref.at("out")(i, j, k) - fused_cat.at("out")(i, j, k)));
  EXPECT_LT(interior_diff, 1e-14);
}

TEST(Fusion, OtfEliminatesDeadProducerWrite) {
  const ir::SNode fused = fuse_otf(producer_node(), offset_consumer(), "otf", {"mid"});
  // After inlining, "mid" should not be written (or referenced) at all.
  const dsl::AccessInfo acc = dsl::analyze(*fused.stencil);
  EXPECT_FALSE(acc.writes_field("mid"));
  EXPECT_FALSE(acc.reads_field("mid"));
}

TEST(Fusion, OtfTradesTrafficForRecompute) {
  ir::Program p;
  const exec::LaunchDomain dom{64, 64, 16};
  const ir::SNode a = producer_node();
  const ir::SNode b = offset_consumer();
  auto traffic = [&](const ir::SNode& n) {
    double bytes = 0;
    for (const auto& k : ir::expand_node(n, p, dom, 1)) {
      for (const auto& f : k.fields) {
        bytes += static_cast<double>(f.elems) * (f.read_sites + f.written);
      }
    }
    return bytes;
  };
  double separate_flops = 0, fused_flops = 0;
  for (const auto& k : ir::expand_node(a, p, dom, 1)) separate_flops += k.flops;
  for (const auto& k : ir::expand_node(b, p, dom, 1)) separate_flops += k.flops;
  const ir::SNode fused = fuse_otf(a, b, "otf", {"mid"});
  for (const auto& k : ir::expand_node(fused, p, dom, 1)) fused_flops += k.flops;

  EXPECT_LT(traffic(fused), traffic(a) + traffic(b));  // less memory traffic
  EXPECT_GT(fused_flops, separate_flops * 0.9);        // recompute not free
}

TEST(Fusion, ResolveNodePropagatesBindingsAndParams) {
  StencilBuilder b("s");
  auto q = b.field("q");
  auto dt = b.param("dt");
  b.parallel().full().assign(q, E(q) * E(dt));
  exec::StencilArgs args;
  args.bind["q"] = "model_q";
  args.params["dt"] = 0.25;
  const ir::SNode node = ir::SNode::make_stencil("s", b.build(), args);
  const dsl::StencilFunc resolved = resolve_node(node, "t__");
  const dsl::AccessInfo acc = dsl::analyze(resolved);
  EXPECT_TRUE(acc.writes_field("model_q"));
  EXPECT_TRUE(acc.params.empty());
  EXPECT_EQ(dsl::to_string(resolved.blocks()[0].intervals[0].body[0].rhs),
            "(model_q * 0.25)");
}

TEST(Fusion, EliminateDeadWrites) {
  StencilBuilder b("dead");
  auto a = b.field("a");
  auto bb = b.field("b");
  auto c = b.field("c");
  b.parallel().full().assign(a, 1.0).assign(bb, E(a) + 1.0).assign(c, 3.0);
  dsl::StencilFunc s = b.build();
  // Only "b" is live afterwards: c's write is dead, a's write feeds b.
  const int removed = eliminate_dead_writes(s, {"b"});
  EXPECT_EQ(removed, 1);
  const dsl::AccessInfo acc = dsl::analyze(s);
  EXPECT_TRUE(acc.writes_field("a"));
  EXPECT_TRUE(acc.writes_field("b"));
  EXPECT_FALSE(acc.writes_field("c"));
}

// ---- Program passes -------------------------------------------------------

ir::Program small_program() {
  ir::Program p("small");
  StencilBuilder h("horiz");
  auto q = h.field("q");
  h.parallel().full().assign(q, pow(E(q), 2.0));

  StencilBuilder v("vert");
  auto a = v.field("a");
  v.forward().interval(dsl::inner_levels(1, 0)).assign(a, a.at_k(-1) + E(a));

  StencilBuilder r("regions");
  auto z = r.field("z");
  r.parallel()
      .full()
      .assign_in(dsl::region_i_start(1), z, 1.0)
      .assign_in(dsl::region_i_start(1), z, 1.0)  // duplicate
      .assign_in(dsl::region_j_end(1), z, 2.0);

  p.append_state(ir::State{"s0",
                           {ir::SNode::make_stencil("h", h.build()),
                            ir::SNode::make_stencil("v", v.build()),
                            ir::SNode::make_stencil("r", r.build())}});
  return p;
}

TEST(Passes, IsVerticalSolver) {
  const ir::Program p = small_program();
  EXPECT_FALSE(is_vertical_solver(*p.states()[0].nodes[0].stencil));
  EXPECT_TRUE(is_vertical_solver(*p.states()[0].nodes[1].stencil));
}

TEST(Passes, ApplySchedulesByKind) {
  ir::Program p = small_program();
  apply_schedules(p, sched::tuned_horizontal(), sched::tuned_vertical());
  EXPECT_TRUE(p.states()[0].nodes[0].schedule.k_as_map);
  EXPECT_FALSE(p.states()[0].nodes[1].schedule.k_as_map);
  EXPECT_EQ(p.states()[0].nodes[1].schedule.vertical_cache, sched::CacheKind::Registers);
}

TEST(Passes, StrengthReduceProgramCounts) {
  ir::Program p = small_program();
  EXPECT_EQ(strength_reduce_program(p), 1);
  EXPECT_EQ(strength_reduce_program(p), 0);  // idempotent
}

TEST(Passes, PruneRegionsRemovesOffRankAndDuplicates) {
  {
    ir::Program p = small_program();
    // Full tile: nothing is off-rank; only the duplicate goes.
    exec::LaunchDomain dom{16, 16, 4};
    EXPECT_EQ(prune_regions(p, dom), 1);
    EXPECT_EQ(count_region_stmts(p), 2);
  }
  {
    ir::Program p = small_program();
    // Interior subdomain: no tile edges owned; all region stmts go, and the
    // then-empty stencil node disappears.
    exec::LaunchDomain dom{16, 16, 4};
    dom.gi0 = 16;
    dom.gj0 = 16;
    dom.gni = 64;
    dom.gnj = 64;
    EXPECT_EQ(prune_regions(p, dom), 3);
    EXPECT_EQ(count_region_stmts(p), 0);
    EXPECT_EQ(p.states()[0].nodes.size(), 2u);
  }
}

TEST(Passes, PruneRegionsDropsFullyRegionedNodeAndProgramStaysRunnable) {
  // A program whose only node is region-restricted everywhere: on an
  // interior placement every statement resolves empty, the node vanishes,
  // and the surviving (empty-state) program must still execute.
  ir::Program p("edges_only");
  StencilBuilder b("edges");
  auto z = b.field("z");
  b.parallel()
      .full()
      .assign_in(dsl::region_i_start(2), z, 1.0)
      .assign_in(dsl::region_i_end(2), z, 2.0)
      .assign_in(dsl::region_j_start(1), z, 3.0)
      .assign_in(dsl::region_j_end(1), z, 4.0);
  p.append_state(ir::State{"s0", {ir::SNode::make_stencil("e", b.build())}});

  exec::LaunchDomain dom{8, 8, 4};
  dom.gi0 = 16;
  dom.gj0 = 16;
  dom.gni = 64;
  dom.gnj = 64;
  EXPECT_EQ(prune_regions(p, dom), 4);
  EXPECT_TRUE(p.states()[0].nodes.empty());

  FieldCatalog cat;
  auto& f = cat.create("z", dom.ni, dom.nj, dom.nk, HaloSpec{3, 3});
  f.fill_with([](int, int, int) { return 7.0; });
  p.execute(cat, dom);                // no-op, but must not throw
  EXPECT_EQ(cat.at("z")(0, 0, 0), 7.0);  // and must not touch data
}

TEST(Passes, PruneRegionsKeepsNonIdempotentDuplicates) {
  // `z = z + 1` twice is not the same as once: the dedup must refuse
  // self-reading duplicates even though they are textually identical.
  ir::Program p("selfdup");
  StencilBuilder b("bump");
  auto z = b.field("z");
  b.parallel()
      .full()
      .assign_in(dsl::region_i_start(1), z, E(z) + 1.0)
      .assign_in(dsl::region_i_start(1), z, E(z) + 1.0);
  p.append_state(ir::State{"s0", {ir::SNode::make_stencil("b", b.build())}});
  EXPECT_EQ(prune_regions(p, exec::LaunchDomain{8, 8, 4}), 0);
  EXPECT_EQ(count_region_stmts(p), 2);
}

TEST(Passes, PruneRegionsKeepsSeparatedDuplicates) {
  // Identical region statements with an observer in between: removing the
  // second copy would change what the middle statement sees, so only
  // *adjacent* duplicates may be deduplicated.
  ir::Program p("sepdup");
  StencilBuilder b("sep");
  auto z = b.field("z");
  auto w = b.field("w");
  b.parallel()
      .full()
      .assign_in(dsl::region_i_start(1), z, 1.0)
      .assign_in(dsl::region_i_start(1), w, E(z) * 2.0)
      .assign_in(dsl::region_i_start(1), z, 1.0);
  p.append_state(ir::State{"s0", {ir::SNode::make_stencil("b", b.build())}});
  EXPECT_EQ(prune_regions(p, exec::LaunchDomain{8, 8, 4}), 0);
  EXPECT_EQ(count_region_stmts(p), 3);
}

TEST(Passes, PruneRegionsCollapsesDuplicateRuns) {
  // A run of N identical idempotent statements collapses to exactly one.
  ir::Program p("rundup");
  StencilBuilder b("run");
  auto z = b.field("z");
  b.parallel()
      .full()
      .assign_in(dsl::region_j_end(1), z, 5.0)
      .assign_in(dsl::region_j_end(1), z, 5.0)
      .assign_in(dsl::region_j_end(1), z, 5.0);
  p.append_state(ir::State{"s0", {ir::SNode::make_stencil("b", b.build())}});
  EXPECT_EQ(prune_regions(p, exec::LaunchDomain{8, 8, 4}), 2);
  EXPECT_EQ(count_region_stmts(p), 1);
}

TEST(Passes, PruneRegionsPartialNodeSurvival) {
  // Placement owning only the i_start edge: the i_end statement goes, the
  // i_start one stays, and the node itself survives with its unregioned
  // statement intact.
  ir::Program p("partial");
  StencilBuilder b("mix");
  auto z = b.field("z");
  b.parallel()
      .full()
      .assign(z, E(z) * 1.5)
      .assign_in(dsl::region_i_start(1), z, 1.0)
      .assign_in(dsl::region_i_end(1), z, 2.0);
  p.append_state(ir::State{"s0", {ir::SNode::make_stencil("b", b.build())}});
  exec::LaunchDomain dom{8, 8, 4};
  dom.gni = 32;  // low corner: i_start owned, i_end not
  dom.gnj = 32;
  EXPECT_EQ(prune_regions(p, dom), 1);
  EXPECT_EQ(count_region_stmts(p), 1);
  ASSERT_EQ(p.states()[0].nodes.size(), 1u);
}

TEST(Passes, SetVerticalCacheTouchesOnlySolvers) {
  ir::Program p = small_program();
  apply_schedules(p, sched::tuned_horizontal(), sched::tuned_vertical());
  set_vertical_cache(p, sched::CacheKind::None);
  EXPECT_EQ(p.states()[0].nodes[1].schedule.vertical_cache, sched::CacheKind::None);
  set_vertical_cache(p, sched::CacheKind::Registers);
  EXPECT_EQ(p.states()[0].nodes[1].schedule.vertical_cache, sched::CacheKind::Registers);
  // Horizontal node untouched (its k is mapped).
  EXPECT_EQ(p.states()[0].nodes[0].schedule.vertical_cache, sched::CacheKind::None);
}

}  // namespace
}  // namespace cyclone::xform
