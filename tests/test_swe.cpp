#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/verify/corpus.hpp"
#include "grid/cube_topology.hpp"
#include "swe/driver.hpp"
#include "swe/init.hpp"

namespace cyclone::swe {
namespace {

SweConfig small_config(int ntracers = 1) {
  SweConfig cfg;
  cfg.npx = 12;
  cfg.ntracers = ntracers;
  return cfg;
}

/// Snapshot one prognostic field of every rank (compute domain only).
std::vector<double> snapshot(SweModel& model, const std::string& name) {
  std::vector<double> out;
  for (int r = 0; r < model.num_ranks(); ++r) {
    const grid::RankInfo& info = model.state(r).geometry().rank_info;
    const FieldD& f = model.state(r).f(name);
    for (int j = 0; j < info.nj; ++j)
      for (int i = 0; i < info.ni; ++i) out.push_back(f(i, j));
  }
  return out;
}

verify::ScenarioResult assemble_prognostics(SweModel& model, int ntracers) {
  std::vector<verify::RankView> views;
  for (int r = 0; r < model.num_ranks(); ++r) {
    const grid::RankInfo info = model.partitioner().info(r);
    views.push_back({&model.state(r).catalog(), info.tile, info.i0, info.j0, info.ni, info.nj});
  }
  verify::ScenarioResult result;
  for (const auto& name : SweState::prognostic_names(ntracers)) {
    result.fields.push_back(
        verify::assemble_field(name, grid::kNumFaces, model.partitioner().n(), views));
  }
  return result;
}

TEST(SweConfig, ValidateRejectsCflViolation) {
  SweConfig cfg = small_config();
  EXPECT_NO_THROW(cfg.validate());
  cfg.dt = 100000.0;  // gravity wave would cross many cells per substep
  EXPECT_GT(cfg.gravity_wave_courant(), 1.0);
  EXPECT_THROW(cfg.validate(), Error);
  cfg = small_config();
  cfg.npx = 4;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(SweModel, ConstantStateIsExactlySteady) {
  SweModel model(small_config(), 6);
  for (int r = 0; r < model.num_ranks(); ++r) {
    model.state(r).f("h").fill(model.state(r).config().h0);
    model.state(r).f("u").fill(0.0);
    model.state(r).f("v").fill(0.0);
    model.state(r).f("q0").fill(1.0);
  }
  model.step();
  model.step();
  for (const char* name : {"h", "u", "v", "q0"}) {
    const double expected = std::string(name) == "h" ? 8000.0
                            : std::string(name) == "q0" ? 1.0
                                                        : 0.0;
    for (double v : snapshot(model, name)) {
      ASSERT_EQ(v, expected) << "field " << name << " drifted from a uniform rest state";
    }
  }
}

TEST(SweModel, MassIsConserved) {
  SweModel model(small_config(), 6);
  init_gaussian_hill(model);
  const double mass0 = model.diagnostics().total_mass;
  for (int s = 0; s < 5; ++s) model.step();
  const SweDiagnostics diag = model.diagnostics();
  ASSERT_TRUE(diag.finite());
  // Flux-form continuity conserves mass exactly in the tile interiors; the
  // residual is the one-sided flux mismatch along cube edges (~2e-7/step
  // relative at c12).
  EXPECT_NEAR(diag.total_mass / mass0, 1.0, 1e-5);
}

TEST(SweModel, TracerConstantIsPreserved) {
  SweModel model(small_config(), 6);
  init_gaussian_hill(model);
  for (int r = 0; r < model.num_ranks(); ++r) model.state(r).f("q0").fill(1.0);
  for (int s = 0; s < 3; ++s) model.step();
  for (double v : snapshot(model, "q0")) {
    ASSERT_NEAR(v, 1.0, 1e-12) << "mass-consistent advection must keep q == 1 uniform";
  }
}

TEST(SweModel, ZonalFlowStaysNearSteady) {
  SweModel model(small_config(), 6);
  init_zonal_flow(model);
  const std::vector<double> h0 = snapshot(model, "h");
  for (int s = 0; s < 5; ++s) model.step();
  ASSERT_TRUE(model.diagnostics().finite());
  const std::vector<double> h1 = snapshot(model, "h");
  double max_dev = 0.0;
  for (size_t i = 0; i < h0.size(); ++i) max_dev = std::max(max_dev, std::abs(h1[i] - h0[i]));
  // Williamson case 2 is a steady analytic solution. The discrete trajectory
  // drifts (the D-grid IC is not in exact discrete balance) but must stay
  // well inside the ~970 m geostrophic depth signal over 5 steps.
  EXPECT_LT(max_dev, 300.0);
}

TEST(SweModel, VortexStaysFiniteAndPositive) {
  SweModel model(small_config(2), 6);
  init_vortex(model);
  for (int s = 0; s < 5; ++s) model.step();
  const SweDiagnostics diag = model.diagnostics();
  ASSERT_TRUE(diag.finite());
  EXPECT_GT(diag.min_h, 0.0) << "depth went non-positive";
  EXPECT_LT(diag.max_wind, 100.0) << "winds blowing up";
}

// A hill centered on the equator is symmetric under lat -> -lat. On tiles
// whose own index mirror j -> n-1-j realizes that reflection (the guard
// below checks the grid really has this property before relying on it), the
// evolved depth field must stay mirror-symmetric away from the cube
// corners. (The corner halo fill is directional, so cells within a few
// stencil radii of a corner are legitimately asymmetric; the region checked
// here is outside that influence cone for a single step.)
TEST(SweModel, EquatorMirrorSymmetryIsPreserved) {
  const int n = 24;
  SweConfig cfg;
  cfg.npx = n;
  SweModel model(cfg, 6);
  GaussianHillCase hill;
  hill.lat0 = 0.0;
  init_gaussian_hill(model, hill);
  model.step();

  int tiles_checked = 0;
  for (int r = 0; r < model.num_ranks(); ++r) {
    const grid::RankInfo& info = model.state(r).geometry().rank_info;
    // Guard: does j -> n-1-j mirror this tile across the equator?
    bool mirror_tile = true;
    for (int j = 0; j < n && mirror_tile; ++j) {
      for (int i = 0; i < n && mirror_tile; ++i) {
        const grid::LatLon a = grid::cell_center_latlon(info.tile, i, j, n);
        const grid::LatLon b = grid::cell_center_latlon(info.tile, i, n - 1 - j, n);
        if (std::abs(a.lat + b.lat) > 1e-9 ||
            std::abs(std::remainder(a.lon - b.lon, 2 * M_PI)) > 1e-9) {
          mirror_tile = false;
        }
      }
    }
    if (!mirror_tile) continue;
    const FieldD& h = model.state(r).f("h");
    double max_asym = 0.0;
    double max_anom = 0.0;
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        // Chebyshev distance to the nearest tile corner must exceed the
        // one-step stencil influence radius (2 substeps x radius 3, +pad).
        const int di = std::min(i, n - 1 - i);
        const int dj = std::min(j, n - 1 - j);
        if (std::max(di, dj) <= 8) continue;
        max_asym = std::max(max_asym, std::abs(h(i, j) - h(i, n - 1 - j)));
        max_anom = std::max(max_anom, std::abs(h(i, j) - 8000.0));
      }
    }
    if (max_anom < 1.0) continue;  // hill did not reach this tile
    ++tiles_checked;
    EXPECT_LT(max_asym, 1e-6 * max_anom) << "tile " << info.tile;
  }
  ASSERT_GE(tiles_checked, 1) << "no equator-mirrored tile saw the hill: test is miswired";
}

// Satellite: the many-tracer batch is bitwise identical on every in-process
// executor at 1, 8, and 35 tracers (the JIT axis is covered by the corpus).
TEST(SweModel, TracerCountSweepIsBitwiseAcrossBackends) {
  for (int nt : {1, 8, 35}) {
    verify::ScenarioResult reference;
    for (const char* backend : {"interp", "tape", "openmp"}) {
      SweModel model(small_config(nt), 6);
      exec::RunOptions run;
      ASSERT_TRUE(exec::parse_backend(backend, run.backend));
      if (run.backend == exec::ExecBackend::OpenMP) run.num_threads = 2;
      model.set_run_options(run);
      init_gaussian_hill(model);
      model.step();
      verify::ScenarioResult result = assemble_prognostics(model, nt);
      if (reference.fields.empty()) {
        reference = std::move(result);
        continue;
      }
      ASSERT_EQ(result.fields.size(), reference.fields.size());
      for (size_t f = 0; f < result.fields.size(); ++f) {
        EXPECT_EQ(result.fields[f], reference.fields[f])
            << "ntracers=" << nt << " backend=" << backend << " field "
            << reference.fields[f].name;
      }
    }
  }
}

// 6-rank and 24-rank decompositions of the same problem must assemble to
// identical global records — the invariance the corpus' concurrent24 column
// rests on.
TEST(SweModel, AssemblyIsDecompositionInvariant) {
  verify::ScenarioResult by_ranks[2];
  const int rank_counts[2] = {6, 24};
  for (int c = 0; c < 2; ++c) {
    SweModel model(small_config(2), rank_counts[c]);
    init_gaussian_hill(model);
    model.step();
    by_ranks[c] = assemble_prognostics(model, 2);
  }
  ASSERT_EQ(by_ranks[0].fields.size(), by_ranks[1].fields.size());
  for (size_t f = 0; f < by_ranks[0].fields.size(); ++f) {
    EXPECT_EQ(by_ranks[0].fields[f], by_ranks[1].fields[f])
        << "field " << by_ranks[0].fields[f].name;
  }
}

}  // namespace
}  // namespace cyclone::swe
