#include <gtest/gtest.h>

#include "core/dsl/builder.hpp"
#include "core/ir/lint.hpp"
#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"

namespace cyclone::ir {
namespace {

using dsl::E;
using dsl::StencilBuilder;

SNode unbound_param_node() {
  StencilBuilder b("scaled");
  auto q = b.field("q");
  auto dt = b.param("dt");
  b.parallel().full().assign(q, E(q) * E(dt));
  return SNode::make_stencil("scaled", b.build());  // dt not bound
}

TEST(Lint, CleanDycoreProgramHasNoErrors) {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.ntracers = 2;
  grid::Partitioner part(cfg.npx, 1, 1);
  fv3::ModelState state(cfg, part, 0);
  const Program prog = fv3::build_dycore_program(state);
  for (const auto& issue : lint(prog)) {
    EXPECT_NE(issue.severity, LintIssue::Severity::Error)
        << issue.where << ": " << issue.message;
  }
}

TEST(Lint, DetectsUnboundParameter) {
  Program p;
  p.append_state(State{"s", {unbound_param_node()}});
  const auto issues = lint(p);
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const auto& issue : issues) {
    found = found || (issue.severity == LintIssue::Severity::Error &&
                      issue.message.find("dt") != std::string::npos);
  }
  EXPECT_TRUE(found) << format_issues(issues);
}

TEST(Lint, DetectsInvalidSchedule) {
  StencilBuilder b("vert");
  auto a = b.field("a");
  b.forward().interval(dsl::inner_levels(1, 0)).assign(a, a.at_k(-1) + 1.0);
  SNode node = SNode::make_stencil("vert", b.build());
  node.schedule.k_as_map = true;  // illegal for a vertical solver
  Program p;
  p.append_state(State{"s", {node}});
  const auto issues = lint(p);
  bool found = false;
  for (const auto& issue : issues) {
    found = found || issue.severity == LintIssue::Severity::Error;
  }
  EXPECT_TRUE(found) << format_issues(issues);
}

TEST(Lint, WarnsOnEmptyStateAndOrphanHalo) {
  Program p;
  p.append_state(State{"empty", {}});
  p.append_state(State{"hx", {SNode::make_halo_exchange("hx", {"ghost_field"}, 3)}});
  const auto issues = lint(p);
  int warnings = 0;
  for (const auto& issue : issues) {
    warnings += issue.severity == LintIssue::Severity::Warning;
  }
  EXPECT_GE(warnings, 2) << format_issues(issues);
}

TEST(Lint, OddVectorExchangeIsError) {
  Program p;
  p.append_state(State{"hx", {SNode::make_halo_exchange("hx", {"u"}, 3, true)}});
  const auto issues = lint(p);
  bool found = false;
  for (const auto& issue : issues) found = found || issue.severity == LintIssue::Severity::Error;
  EXPECT_TRUE(found);
}

TEST(Json, SerializesStructure) {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.ntracers = 1;
  grid::Partitioner part(cfg.npx, 1, 1);
  fv3::ModelState state(cfg, part, 0);
  const Program prog = fv3::build_dycore_program(state);
  const std::string json = to_json(prog);

  EXPECT_NE(json.find("\"name\":\"fv3_dycore\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"stencil\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"halo_exchange\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"loop\""), std::string::npos);
  EXPECT_NE(json.find("riem_solver_c.forward"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Json, RoundTripsEveryScheduleAndCacheKind) {
  // One program holding a node for every feasible schedule of both
  // iteration-order families plus every CacheKind and RegionStrategy value:
  // lint must accept all of them and to_json must render each distinctly.
  Program p("all_schedules");
  State state;
  state.name = "s0";
  int id = 0;

  auto horizontal_node = [&](const sched::Schedule& s) {
    StencilBuilder b("h" + std::to_string(id));
    auto q = b.field("q");
    b.parallel()
        .full()
        .assign(q, E(q) * 2.0)
        .assign_in(dsl::region_i_start(1), q, 0.0);  // exercises region_strategy
    SNode node = SNode::make_stencil("h" + std::to_string(id++), b.build());
    node.schedule = s;
    return node;
  };
  auto vertical_node = [&](const sched::Schedule& s) {
    StencilBuilder b("v" + std::to_string(id));
    auto a = b.field("a");
    b.forward().interval(dsl::inner_levels(1, 0)).assign(a, a.at_k(-1) + E(a));
    SNode node = SNode::make_stencil("v" + std::to_string(id++), b.build());
    node.schedule = s;
    return node;
  };

  std::vector<sched::Schedule> all;
  for (auto s : sched::enumerate_valid(dsl::IterOrder::Parallel)) {
    s.region_strategy = (id % 2) ? sched::RegionStrategy::SeparateKernels
                                 : sched::RegionStrategy::Predicated;
    state.nodes.push_back(horizontal_node(s));
    all.push_back(s);
  }
  for (auto s : sched::enumerate_valid(dsl::IterOrder::Forward)) {
    for (const auto cache : {sched::CacheKind::None, sched::CacheKind::Registers,
                             sched::CacheKind::SharedMemory}) {
      if (s.k_as_map && cache != sched::CacheKind::None) continue;  // infeasible
      sched::Schedule v = s;
      v.vertical_cache = cache;
      if (!sched::is_valid(v, dsl::IterOrder::Forward)) continue;
      state.nodes.push_back(vertical_node(v));
      all.push_back(v);
    }
  }
  ASSERT_GT(all.size(), 4u);
  p.append_state(std::move(state));

  for (const auto& issue : lint(p)) {
    EXPECT_NE(issue.severity, LintIssue::Severity::Error)
        << issue.where << ": " << issue.message;
  }

  const std::string json = to_json(p);
  for (const auto& s : all) {
    EXPECT_NE(json.find(s.describe()), std::string::npos)
        << "schedule missing from JSON: " << s.describe();
  }
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Backend, ReferenceMatchesCompiledOnDycoreState) {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 6;
  cfg.k_split = 1;
  cfg.n_split = 1;
  cfg.ntracers = 1;
  cfg.dt = 200.0;

  auto run = [&](Program::Backend backend) {
    fv3::DistributedModel model(cfg, 6);
    fv3::init_baroclinic(model);
    model.program().set_backend(backend);
    model.step();
    return model.diagnostics();
  };
  const auto compiled = run(Program::Backend::Compiled);
  const auto reference = run(Program::Backend::Reference);
  EXPECT_EQ(compiled.total_mass, reference.total_mass);
  EXPECT_EQ(compiled.max_wind, reference.max_wind);
  EXPECT_EQ(compiled.mean_pt, reference.mean_pt);
}

}  // namespace
}  // namespace cyclone::ir
