#include <gtest/gtest.h>

#include <limits>

#include "core/dsl/builder.hpp"
#include "core/ir/expand.hpp"
#include "core/perf/benchjson.hpp"
#include "core/perf/model.hpp"
#include "core/perf/report.hpp"
#include "core/util/error.hpp"

namespace cyclone::perf {
namespace {

using dsl::E;
using dsl::StencilBuilder;

/// copy stencil: 1 read + 1 write — the Sec. VIII-A bandwidth probe.
ir::SNode copy_node() {
  StencilBuilder b("copy");
  auto in = b.field("in");
  auto out = b.field("out");
  b.parallel().full().assign(out, E(in));
  return ir::SNode::make_stencil("copy", b.build(), {}, sched::tuned_horizontal());
}

ir::SNode star5_node() {
  StencilBuilder b("star5");
  auto in = b.field("in");
  auto out = b.field("out");
  b.parallel().full().assign(out,
                             in(-1, 0) + in(1, 0) + in(0, -1) + in(0, 1) - 4.0 * E(in));
  return ir::SNode::make_stencil("star5", b.build(), {}, sched::tuned_horizontal());
}

std::vector<ir::KernelDesc> expand(const ir::SNode& node, const exec::LaunchDomain& dom) {
  ir::Program p;
  return ir::expand_node(node, p, dom, 1);
}

TEST(Machine, SpecsMatchPaperPeaks) {
  EXPECT_NEAR(p100().dram_bw / 1e9, 525.9, 5.0);   // 489.83 GiB/s in B/s
  EXPECT_NEAR(haswell().dram_bw / 1e9, 44.0, 1.0);  // 40.99 GiB/s in B/s
  EXPECT_NEAR(a100().dram_bw / p100().dram_bw, 2.83, 0.01);
  EXPECT_TRUE(p100().is_gpu);
  EXPECT_FALSE(haswell().is_gpu);
}

TEST(Machine, BandwidthRatioBoundsSpeedup) {
  // The paper's expected max speedup for memory-bound code: 11.45x.
  EXPECT_NEAR(p100().dram_bw / haswell().dram_bw, 11.95, 0.5);
}

TEST(Machine, BwEfficiencyMonotonic) {
  const MachineSpec m = p100();
  EXPECT_LT(m.bw_efficiency(1000), m.bw_efficiency(100000));
  EXPECT_LT(m.bw_efficiency(1e6), 1.0);
  EXPECT_GT(m.bw_efficiency(1e6), 0.95);
  EXPECT_EQ(haswell().bw_efficiency(1), 1.0);  // CPUs assumed saturated
}

TEST(Machine, ThreadScaledBandwidth) {
  const MachineSpec m = haswell();
  // All cores (the default) draw the full socket bandwidth.
  EXPECT_DOUBLE_EQ(m.effective_bw(), m.dram_bw);
  EXPECT_DOUBLE_EQ(m.with_threads(1).effective_bw(), m.core_bw);
  EXPECT_DOUBLE_EQ(m.with_threads(2).effective_bw(), 2.0 * m.core_bw);
  // Past the memory-controller knee the socket caps the team.
  EXPECT_DOUBLE_EQ(m.with_threads(8).effective_bw(), m.dram_bw);
  double prev = 0;
  for (int t = 1; t <= m.cores; ++t) {
    const double bw = m.with_threads(t).effective_bw();
    EXPECT_GE(bw, prev);
    EXPECT_LE(bw, m.dram_bw);
    prev = bw;
  }
  // GPU specs keep their defaults (cores=1, core_bw=0): no thread scaling.
  EXPECT_DOUBLE_EQ(p100().effective_bw(), p100().dram_bw);
  EXPECT_DOUBLE_EQ(p100().with_threads(4).effective_bw(), p100().dram_bw);
}

TEST(Machine, ThreadScaledFlops) {
  const MachineSpec m = haswell();
  EXPECT_DOUBLE_EQ(m.effective_flops(), m.flop_peak);
  EXPECT_DOUBLE_EQ(m.with_threads(6).effective_flops(), m.flop_peak * 0.5);
  // Requests beyond the core count clamp to the socket.
  EXPECT_DOUBLE_EQ(m.with_threads(4 * m.cores).effective_flops(), m.flop_peak);
  EXPECT_DOUBLE_EQ(p100().effective_flops(), p100().flop_peak);
}

TEST(Model, CpuTimeShrinksWithThreadsUntilSaturation) {
  const auto kernels = expand(copy_node(), exec::LaunchDomain{256, 256, 64});
  const double t1 = model_module_cpu(kernels, haswell().with_threads(1));
  const double t2 = model_module_cpu(kernels, haswell().with_threads(2));
  const double t4 = model_module_cpu(kernels, haswell().with_threads(4));
  const double t12 = model_module_cpu(kernels, haswell().with_threads(12));
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t4);
  // haswell() saturates the socket at ~4 threads: no further gain.
  EXPECT_NEAR(t4, t12, t4 * 0.05);
  // Speedup at the knee is meaningful (close to the 4x bandwidth ratio).
  EXPECT_GT(t1 / t4, 2.0);
}

TEST(Model, CopyStencilNearPeak) {
  // A large copy stencil must achieve close to peak bandwidth (the paper
  // verifies GT4Py+DaCe reach 489.83 of 501.1 GB/s).
  const auto kernels = expand(copy_node(), exec::LaunchDomain{192, 192, 80});
  ASSERT_EQ(kernels.size(), 1u);
  const KernelTime t = model_kernel(kernels[0], p100());
  EXPECT_GT(t.utilization(), 0.90);
}

TEST(Model, UniqueVsAccessBytes) {
  const auto kernels = expand(star5_node(), exec::LaunchDomain{128, 128, 80});
  ASSERT_EQ(kernels.size(), 1u);
  const double uniq = unique_bytes(kernels[0]);
  const double acc = access_bytes(kernels[0], p100());
  // 5 read sites: unique counts one read + one write; access adds the
  // neighbor-miss fraction for the 4 extra sites.
  const double elems = 128.0 * 128 * 80 * 8;
  EXPECT_NEAR(uniq, 2 * elems, 1e-6);
  EXPECT_NEAR(acc, elems * (1 + 0.14 * 4) + elems, 1e-6);
  EXPECT_GT(acc, uniq);
}

TEST(Model, SmallGridUnderutilizesGpu) {
  const auto small = expand(copy_node(), exec::LaunchDomain{32, 32, 1});
  const auto large = expand(copy_node(), exec::LaunchDomain{512, 512, 80});
  const KernelTime ts = model_kernel(small[0], p100());
  const KernelTime tl = model_kernel(large[0], p100());
  EXPECT_LT(ts.utilization(), tl.utilization());
}

TEST(Model, FlopBoundKernelBelowMemPeak) {
  // A pow-heavy kernel is compute-bound: utilization well below 1, and
  // strength reduction (fewer flops) must raise it — the Smagorinsky story.
  StencilBuilder b("powheavy");
  auto x = b.field("x");
  auto o = b.field("o");
  b.parallel().full().assign(
      o, pow(pow(E(x), 2.0) + pow(E(x), 2.0), 0.5) + pow(E(x), 3.0) + pow(E(x), 4.0));
  ir::SNode node = ir::SNode::make_stencil("pw", b.build(), {}, sched::tuned_horizontal());
  const auto kernels = expand(node, exec::LaunchDomain{192, 192, 80});
  const KernelTime t = model_kernel(kernels[0], p100());
  EXPECT_LT(t.utilization(), 0.5);
}

TEST(Model, LaunchOverheadDominatesTinyKernels) {
  const auto kernels = expand(copy_node(), exec::LaunchDomain{4, 4, 1});
  const KernelTime t = model_kernel(kernels[0], p100());
  EXPECT_GT(t.simulated, p100().launch_overhead);
  EXPECT_LT(t.utilization(), 0.05);
}

TEST(Model, ProgramTimeSumsInvocations) {
  auto kernels = expand(copy_node(), exec::LaunchDomain{64, 64, 8});
  const double once = model_program(kernels, p100());
  kernels[0].invocations = 10;
  EXPECT_NEAR(model_program(kernels, p100()), 10 * once, 1e-12);
}

TEST(Model, CpuCacheFallOff) {
  // The FORTRAN-style CPU model: time grows faster than the domain once the
  // per-plane working set overflows the cache (Table II trend). Use a spec
  // with a small cache so the sweep crosses the capacity edge.
  MachineSpec cpu = haswell();
  cpu.cache_bytes = 0.5e6;
  cpu.launch_overhead = 0;
  auto time_at = [&](int n) {
    // A module with several kernels over the same fields (inter-kernel
    // reuse is what the cache buys).
    std::vector<ir::KernelDesc> kernels;
    for (int rep = 0; rep < 6; ++rep) {
      auto ks = expand(star5_node(), exec::LaunchDomain{n, n, 80});
      kernels.insert(kernels.end(), ks.begin(), ks.end());
    }
    return model_module_cpu(kernels, cpu);
  };
  const double t128 = time_at(128);
  const double t256 = time_at(256);
  const double t512 = time_at(512);
  EXPECT_GT(t256 / t128, 4.2);  // superlinear across the cache edge
  EXPECT_GT(t512 / t256, 4.0);
}

TEST(Model, CpuCachedRegimeNearIdealScaling) {
  auto time_at = [&](int n) {
    auto ks = expand(star5_node(), exec::LaunchDomain{n, n, 4});
    return model_module_cpu(ks, haswell());
  };
  // Tiny planes fit in cache: scaling stays close to the grid-point factor.
  const double r = time_at(64) / time_at(32);
  EXPECT_GT(r, 3.0);
  EXPECT_LT(r, 5.5);
}

TEST(Model, GpuBeatsCpuOnLargeDomains) {
  const auto kernels = expand(star5_node(), exec::LaunchDomain{384, 384, 80});
  const double gpu = model_program(kernels, p100());
  const double cpu = model_module_cpu(kernels, haswell());
  EXPECT_GT(cpu / gpu, 3.0);
  EXPECT_LT(cpu / gpu, 13.0);  // bounded by the bandwidth ratio + miss model
}

TEST(Model, A100FasterThanP100) {
  const auto kernels = expand(star5_node(), exec::LaunchDomain{192, 192, 80});
  const double tp = model_program(kernels, p100());
  const double ta = model_program(kernels, a100());
  EXPECT_GT(tp / ta, 1.8);
  EXPECT_LT(tp / ta, 2.9);
}

TEST(Report, GroupsAndRanks) {
  auto k1 = expand(copy_node(), exec::LaunchDomain{192, 192, 80});
  auto k2 = expand(star5_node(), exec::LaunchDomain{192, 192, 80});
  k1[0].invocations = 3;
  std::vector<ir::KernelDesc> all;
  all.push_back(k1[0]);
  all.push_back(k2[0]);
  all.push_back(k1[0]);  // same label appears twice -> grouped

  const auto report = bandwidth_report(all, p100());
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].label, "copy#0");  // 6 launches outweigh one star5
  EXPECT_EQ(report[0].launches, 6);
  EXPECT_GT(report[0].peak_fraction, report[1].peak_fraction);

  const std::string text = format_report(report);
  EXPECT_NE(text.find("copy#0"), std::string::npos);
  EXPECT_NE(text.find("%"), std::string::npos);
}

TEST(Report, RespectsMaxRows) {
  std::vector<ir::KernelDesc> all;
  for (int i = 0; i < 30; ++i) {
    auto ks = expand(copy_node(), exec::LaunchDomain{16, 16, 2});
    ks[0].label = "k" + std::to_string(i);
    all.push_back(ks[0]);
  }
  const auto report = bandwidth_report(all, p100());
  EXPECT_EQ(report.size(), 30u);
  const std::string text = format_report(report, 5);
  // Header + 5 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

}  // namespace
}  // namespace cyclone::perf

namespace cyclone::perf {
namespace {

TEST(Report, CsvExport) {
  std::vector<KernelReport> rows(2);
  rows[0].label = "a#0";
  rows[0].launches = 3;
  rows[0].total_runtime = 1.5e-3;
  rows[0].worst_kernel_time = 6e-4;
  rows[0].peak_fraction = 0.75;
  rows[1].label = "b#1";
  const std::string csv = report_to_csv(rows);
  EXPECT_NE(csv.find("kernel,launches,total_seconds"), std::string::npos);
  EXPECT_NE(csv.find("a#0,3,0.0015,0.0006,0.750000"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

// --- Bench JSON schema ------------------------------------------------------

TEST(BenchJson, ParsesRecordsAndFindsKeys) {
  const JsonValue v = parse_json(
      R"({"bench":"x","n":-1.5e3,"flag":true,"none":null,"list":[1,2],"nested":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("bench")->text, "x");
  EXPECT_EQ(v.find("n")->number, -1500.0);
  EXPECT_TRUE(v.find("flag")->boolean);
  EXPECT_EQ(v.find("none")->kind, JsonValue::Kind::Null);
  ASSERT_EQ(v.find("list")->items.size(), 2u);
  EXPECT_EQ(v.find("nested")->find("k")->text, "v");
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(BenchJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), Error);                          // truncation
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), Error);         // trailing garbage
  EXPECT_THROW(parse_json("{\"a\":inf}"), Error);                // printf rot
  EXPECT_THROW(parse_json("{\"a\":nan}"), Error);
  EXPECT_THROW(parse_json("{\"a\":1e999}"), Error);              // overflows to inf
  EXPECT_THROW(parse_json("{\"a\":1,\"a\":2}"), Error);          // duplicate key
  EXPECT_THROW(parse_json("{\"a\":\"unterminated}"), Error);
}

TEST(BenchJson, DecodesUnicodeEscapesToUtf8) {
  // BMP code points: 2- and 3-byte UTF-8.
  EXPECT_EQ(parse_json(R"({"s":"caf\u00e9"})").find("s")->text, "caf\xc3\xa9");
  EXPECT_EQ(parse_json(R"({"s":"\u2603"})").find("s")->text, "\xe2\x98\x83");
  // Mixed-case hex and ASCII escapes alongside.
  EXPECT_EQ(parse_json(R"({"s":"\u00E9\n"})").find("s")->text, "\xc3\xa9\n");
  // Surrogate pair: one astral code point, 4-byte UTF-8.
  EXPECT_EQ(parse_json(R"({"s":"\ud83d\ude00"})").find("s")->text, "\xf0\x9f\x98\x80");
}

TEST(BenchJson, Utf8DecodingRoundTripsThroughFormatter) {
  // A decoded string re-emitted by the formatter must parse back unchanged
  // (the writer passes UTF-8 bytes through raw, which is valid JSON).
  const std::string text = parse_json(R"({"s":"\u00e9 \u2603 \ud83d\ude00"})").find("s")->text;
  const JsonValue again = parse_json("{\"s\":\"" + text + "\"}");
  EXPECT_EQ(again.find("s")->text, text);
}

TEST(BenchJson, RejectsMalformedUnicodeEscapes) {
  EXPECT_THROW(parse_json(R"({"s":"\u12"})"), Error);        // truncated
  EXPECT_THROW(parse_json(R"({"s":"\u12g4"})"), Error);      // bad hex digit
  EXPECT_THROW(parse_json(R"({"s":"\ud83d"})"), Error);      // lone high surrogate
  EXPECT_THROW(parse_json("{\"s\":\"\\ud83dx\\u0041\"}"), Error);     // high surrogate, no pair
  EXPECT_THROW(parse_json("{\"s\":\"\\ud83d\\u0041\"}"), Error);  // bad low surrogate
  EXPECT_THROW(parse_json(R"({"s":"\ude00"})"), Error);      // lone low surrogate
}

TEST(BenchJson, FormatterOutputValidates) {
  const std::string line = format_bench_record("ensemble", "swe_c12m4", 2, 1.25e-2, 3.7,
                                               "\"members\":4,\"mode\":\"batched\"");
  const JsonValue record = parse_json(line);
  EXPECT_TRUE(validate_bench_record(record).empty());
  EXPECT_EQ(record.find("members")->number, 4.0);
}

TEST(BenchJson, FormatterRendersNonFiniteAsNullAndValidatorNamesIt) {
  const std::string line =
      format_bench_record("b", "c", 1, 0.5, std::numeric_limits<double>::infinity());
  const JsonValue record = parse_json(line);  // must stay parseable
  const std::vector<std::string> problems = validate_bench_record(record);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("speedup"), std::string::npos);
}

TEST(BenchJson, RecordValidatorCatchesDrift) {
  auto problems_of = [](const std::string& text) {
    return validate_bench_record(parse_json(text));
  };
  EXPECT_TRUE(problems_of(
                  R"({"bench":"b","config":"c","threads":2,"seconds":1e-3,"speedup":2.0})")
                  .empty());
  EXPECT_FALSE(problems_of(R"({"config":"c","threads":2,"seconds":1e-3,"speedup":2.0})")
                   .empty());  // bench missing
  EXPECT_FALSE(problems_of(
                   R"({"bench":"b","config":"c","threads":2.5,"seconds":1e-3,"speedup":2.0})")
                   .empty());  // fractional threads
  EXPECT_FALSE(problems_of(
                   R"({"bench":"b","config":"c","threads":2,"seconds":-1.0,"speedup":2.0})")
                   .empty());  // negative time
  EXPECT_FALSE(problems_of(
                   R"({"bench":"b","config":"c","threads":2,"seconds":1e-3,"speedup":null})")
                   .empty());  // rendered non-finite
}

TEST(BenchJson, SnapshotValidatorRequiresProvenanceAndRecords) {
  const std::string good = R"({
    "bench":"x","description":"d","generated":"2026-08-08","git_sha":"abc","command":"x --y",
    "machine":{"os":"Linux","cpus":1,"toolchain":"c++"},
    "records":[{"bench":"x","config":"c","threads":1,"seconds":1e-3,"speedup":1.0}]})";
  EXPECT_TRUE(validate_bench_snapshot(parse_json(good)).empty());
  // Empty records array: a snapshot that measured nothing is rot, not data.
  const std::string empty_records = R"({
    "bench":"x","description":"d","generated":"g","git_sha":"abc","command":"x",
    "machine":{"os":"Linux","cpus":1,"toolchain":"c++"},"records":[]})";
  EXPECT_FALSE(validate_bench_snapshot(parse_json(empty_records)).empty());
}

// The committed BENCH_* trajectory snapshots themselves: parse + full schema
// check, so a hand-edited or printf-rotted snapshot fails here by name.
TEST(BenchSnapshots, CommittedTrajectoryFilesMatchSchema) {
  for (const char* name : {"BENCH_fig10.json", "BENCH_table3.json", "BENCH_ensemble.json",
                           "BENCH_tuning.json", "BENCH_elastic.json"}) {
    const std::string path = std::string(CYCLONE_SOURCE_DIR) + "/" + name;
    JsonValue snapshot;
    ASSERT_NO_THROW(snapshot = parse_json_file(path)) << path;
    const std::vector<std::string> problems = validate_bench_snapshot(snapshot);
    EXPECT_TRUE(problems.empty()) << path << ": " << (problems.empty() ? "" : problems[0]);
  }
}

}  // namespace
}  // namespace cyclone::perf
