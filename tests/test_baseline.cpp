#include <gtest/gtest.h>

#include <cmath>

#include "baseline/step.hpp"
#include "core/util/rng.hpp"
#include "fv3/init/baroclinic.hpp"
#include "fv3/stencils/fv_tp2d.hpp"
#include "fv3/stencils/riem_solver.hpp"

namespace cyclone::baseline {
namespace {

fv3::FvConfig small_config() {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.k_split = 1;
  cfg.n_split = 2;
  cfg.ntracers = 2;
  cfg.dt = 300.0;
  return cfg;
}

/// Both implementations of fv_tp_2d on identical random inputs must agree
/// to machine precision (the bytecode tape and the C++ expression evaluate
/// the same trees; only association order can differ in the last ulp).
TEST(BaselineKernels, FvTp2dMatchesDslBitwise) {
  const int n = 14, nk = 3;
  auto make_cat = [&](FieldCatalog& cat) {
    for (const char* name : {"q", "crx", "cry", "fx", "fy"}) cat.create(name, n, n, nk);
    Rng rng(21);
    cat.at("q").fill_with([&](int, int, int) { return rng.uniform(0.0, 2.0); });
    cat.at("crx").fill_with([&](int, int, int) { return rng.uniform(-0.5, 0.5); });
    cat.at("cry").fill_with([&](int, int, int) { return rng.uniform(-0.5, 0.5); });
  };

  FieldCatalog dsl_cat, base_cat;
  make_cat(dsl_cat);
  make_cat(base_cat);
  exec::LaunchDomain dom{n, n, nk};

  // DSL: compiled stencil with the face-extended per-call domain.
  exec::LaunchDomain flux_dom = dom;
  flux_dom.ext = exec::DomainExt{0, 1, 0, 1};
  exec::StencilArgs args;
  exec::CompiledStencil(fv3::build_fv_tp2d()).run(dsl_cat, args, flux_dom);
  exec::CompiledStencil(fv3::build_flux_update()).run(dsl_cat, dom);

  fv_tp_2d(base_cat, dom, "q", "fx", "fy");
  flux_update(base_cat, dom, "q", "fx", "fy");

  EXPECT_LT(FieldD::max_abs_diff(dsl_cat.at("q"), base_cat.at("q")), 1e-14);
  EXPECT_LT(FieldD::max_abs_diff(dsl_cat.at("fx"), base_cat.at("fx")), 1e-14);
  EXPECT_LT(FieldD::max_abs_diff(dsl_cat.at("fy"), base_cat.at("fy")), 1e-14);
}

TEST(BaselineKernels, FvTp2dEdgeRegionsMatch) {
  // With the launch placed on a tile edge, both versions must apply the
  // one-sided slope rows identically.
  const int n = 10, nk = 2;
  auto make_cat = [&](FieldCatalog& cat) {
    for (const char* name : {"q", "crx", "cry", "fx", "fy"}) cat.create(name, n, n, nk);
    Rng rng(33);
    cat.at("q").fill_with([&](int, int, int) { return rng.uniform(0.0, 1.0); });
    cat.at("crx").fill(0.3);
    cat.at("cry").fill(-0.2);
  };
  FieldCatalog dsl_cat, base_cat;
  make_cat(dsl_cat);
  make_cat(base_cat);
  exec::LaunchDomain dom{n, n, nk};
  dom.gi0 = 0;
  dom.gj0 = 0;
  dom.gni = n;  // whole tile: both edges present
  dom.gnj = n;

  exec::LaunchDomain flux_dom = dom;
  flux_dom.ext = exec::DomainExt{0, 1, 0, 1};
  exec::CompiledStencil(fv3::build_fv_tp2d()).run(dsl_cat, {}, flux_dom);
  fv_tp_2d(base_cat, dom, "q", "fx", "fy");
  EXPECT_EQ(FieldD::max_abs_diff(dsl_cat.at("fx"), base_cat.at("fx")), 0.0);
  EXPECT_EQ(FieldD::max_abs_diff(dsl_cat.at("fy"), base_cat.at("fy")), 0.0);
}

TEST(BaselineKernels, RiemannSolverMatchesDsl) {
  const int n = 8, nk = 12;
  fv3::FvConfig cfg = small_config();
  cfg.npz = nk;
  const double dt = 12.0;

  auto make_cat = [&](FieldCatalog& cat) {
    for (const char* name : {"delz", "w", "delp", "pp", "aa", "bb", "cc", "rhs", "gam"}) {
      cat.create(name, n, n, nk);
    }
    Rng rng(5);
    cat.at("delz").fill_with([&](int, int, int) { return rng.uniform(200.0, 600.0); });
    cat.at("w").fill_with([&](int, int, int) { return rng.uniform(-2.0, 2.0); });
    cat.at("delp").fill(1.1e4);
  };
  FieldCatalog dsl_cat, base_cat;
  make_cat(dsl_cat);
  make_cat(base_cat);
  const exec::LaunchDomain dom{n, n, nk};

  exec::StencilArgs pre;
  pre.params["dt"] = dt;
  pre.params["cs2"] = grid::kRdGas * cfg.t_mean;
  exec::CompiledStencil(fv3::build_riem_precompute(cfg)).run(dsl_cat, pre, dom);
  exec::CompiledStencil(fv3::build_riem_forward(cfg)).run(dsl_cat, {}, dom);
  exec::StencilArgs back;
  back.params["dt"] = dt;
  exec::CompiledStencil(fv3::build_riem_backward(cfg)).run(dsl_cat, back, dom);

  riem_solver_c(base_cat, dom, cfg, dt);

  // Interior only: the baseline also solves the halo ring.
  double pp_diff = 0, w_diff = 0;
  for (int k = 0; k < nk; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        pp_diff = std::max(pp_diff,
                           std::abs(dsl_cat.at("pp")(i, j, k) - base_cat.at("pp")(i, j, k)));
        w_diff =
            std::max(w_diff, std::abs(dsl_cat.at("w")(i, j, k) - base_cat.at("w")(i, j, k)));
      }
  EXPECT_LT(pp_diff, 1e-12);
  EXPECT_LT(w_diff, 1e-12);
}

TEST(BaselineModel, FullStepMatchesDslModel) {
  // The decisive cross-validation: one full physics step of the baseline
  // loop model vs. the DSL model on 6 ranks from the same initial state.
  const fv3::FvConfig cfg = small_config();

  fv3::DistributedModel dsl_model(cfg, 6);
  init_baroclinic(dsl_model);
  BaselineModel base_model(cfg, 6);
  for (int r = 0; r < 6; ++r) {
    fv3::init_baroclinic(base_model.state(r), base_model.partitioner());
  }
  base_model.exchange_prognostics();

  dsl_model.step();
  base_model.step();

  for (int r = 0; r < 6; ++r) {
    for (const auto& name : fv3::ModelState::prognostic_names(cfg.ntracers)) {
      const double diff =
          FieldD::max_abs_diff(dsl_model.state(r).f(name), base_model.state(r).f(name));
      // Same formulas; tiny differences can enter only through evaluation
      // order inside fused expressions.
      EXPECT_LT(diff, 1e-9) << "rank " << r << " field " << name;
    }
  }

  const auto d1 = dsl_model.diagnostics();
  const auto d2 = base_model.diagnostics();
  EXPECT_NEAR(d1.total_mass, d2.total_mass, 1e-9 * d1.total_mass);
  EXPECT_NEAR(d1.max_wind, d2.max_wind, 1e-9 * (d1.max_wind + 1));
}

TEST(BaselineModel, MultiStepStable) {
  fv3::FvConfig cfg = small_config();
  BaselineModel model(cfg, 6);
  for (int r = 0; r < 6; ++r) {
    fv3::init_baroclinic(model.state(r), model.partitioner());
  }
  model.exchange_prognostics();
  const auto before = model.diagnostics();
  for (int s = 0; s < 3; ++s) model.step();
  const auto after = model.diagnostics();
  ASSERT_TRUE(after.finite());
  EXPECT_LT(after.max_wind, 150.0);
  EXPECT_NEAR(after.total_mass / before.total_mass, 1.0, 5e-3);
}

}  // namespace
}  // namespace cyclone::baseline
