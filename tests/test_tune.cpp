#include <gtest/gtest.h>

#include <cmath>

#include "core/dsl/builder.hpp"
#include "core/tune/tuner.hpp"
#include "core/util/rng.hpp"
#include "core/xform/passes.hpp"
#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"

namespace cyclone::tune {
namespace {

using dsl::E;
using dsl::FieldVar;
using dsl::StencilBuilder;

/// Two-node producer/consumer state (pointwise: SGF-fusible).
ir::Program pointwise_chain() {
  ir::Program p("chain");
  StencilBuilder b1("scale2");
  auto in = b1.field("in");
  auto mid = b1.field("mid");
  b1.parallel().full().assign(mid, E(in) * 2.0);
  StencilBuilder b2("add1");
  auto mid2 = b2.field("mid");
  auto out = b2.field("out");
  b2.parallel().full().assign(out, E(mid2) + 1.0);
  p.append_state(ir::State{"s0",
                           {ir::SNode::make_stencil("a", b1.build(), {}, sched::tuned_horizontal()),
                            ir::SNode::make_stencil("b", b2.build(), {},
                                                    sched::tuned_horizontal())}});
  p.set_field_meta("mid", ir::FieldMeta{ir::FieldKind::Center3D, true});
  return p;
}

/// Offset consumer (OTF-fusible only).
ir::Program offset_chain() {
  ir::Program p("ochain");
  StencilBuilder b1("avg_x");
  auto in = b1.field("in");
  auto mid = b1.field("mid");
  b1.parallel().full().assign(mid, (in(-1, 0) + in(1, 0)) * 0.5);
  StencilBuilder b2("diff_x");
  auto mid2 = b2.field("mid");
  auto out = b2.field("out");
  b2.parallel().full().assign(out, mid2(1, 0) - mid2(-1, 0));
  p.append_state(ir::State{"s0",
                           {ir::SNode::make_stencil("a", b1.build(), {}, sched::tuned_horizontal()),
                            ir::SNode::make_stencil("b", b2.build(), {},
                                                    sched::tuned_horizontal())}});
  p.set_field_meta("mid", ir::FieldMeta{ir::FieldKind::Center3D, true});
  return p;
}

TuningOptions opts() {
  TuningOptions o;
  o.dom = exec::LaunchDomain{64, 64, 16};
  o.machine = perf::p100();
  return o;
}

TEST(Tuner, CutoutFindsSubgraphFusion) {
  const ir::Program p = pointwise_chain();
  const auto cutouts = tune_cutouts(p, opts(), TransformKind::SubgraphFusion);
  ASSERT_EQ(cutouts.size(), 1u);
  EXPECT_EQ(cutouts[0].configs_tested, 1);
  ASSERT_FALSE(cutouts[0].best.empty());
  EXPECT_GT(cutouts[0].best_speedup, 1.0);
  EXPECT_EQ(cutouts[0].best[0].producer, "scale2");
  EXPECT_EQ(cutouts[0].best[0].consumer, "add1");
}

TEST(Tuner, CutoutFindsOtfFusion) {
  const ir::Program p = offset_chain();
  const auto cutouts = tune_cutouts(p, opts(), TransformKind::OtfFusion);
  ASSERT_EQ(cutouts.size(), 1u);
  ASSERT_FALSE(cutouts[0].best.empty());
  EXPECT_EQ(cutouts[0].best[0].kind, TransformKind::OtfFusion);
  // SGF must refuse this chain (horizontal offset dependency).
  const auto sgf = tune_cutouts(p, opts(), TransformKind::SubgraphFusion);
  EXPECT_TRUE(sgf[0].best.empty());
}

TEST(Tuner, CollectPatternsDeduplicates) {
  CutoutResult a, b;
  Pattern p1{TransformKind::SubgraphFusion, "x", "y", 1.5};
  Pattern p2{TransformKind::SubgraphFusion, "x", "y", 2.0};
  Pattern p3{TransformKind::OtfFusion, "x", "y", 1.2};
  a.best = {p1};
  b.best = {p2, p3};
  const auto patterns = collect_patterns({a, b});
  ASSERT_EQ(patterns.size(), 2u);
  EXPECT_EQ(patterns[0].cutout_speedup, 2.0);  // max of duplicates, ranked first
}

TEST(Tuner, TransferAppliesToMatchingTarget) {
  const ir::Program source = pointwise_chain();
  ir::Program target = pointwise_chain();
  const auto patterns =
      collect_patterns(tune_cutouts(source, opts(), TransformKind::SubgraphFusion));
  const TransferReport report = transfer(target, patterns, opts());
  EXPECT_EQ(report.candidates_found, 1);
  EXPECT_EQ(report.applied, 1);
  EXPECT_LT(report.time_after, report.time_before);
  EXPECT_GT(report.speedup(), 1.0);
  // The state now holds one fused node.
  EXPECT_EQ(target.states()[0].nodes.size(), 1u);
}

TEST(Tuner, TransferSkipsNonMatchingLabels) {
  ir::Program target = offset_chain();  // different stencil names
  const auto patterns =
      collect_patterns(tune_cutouts(pointwise_chain(), opts(), TransformKind::SubgraphFusion));
  const TransferReport report = transfer(target, patterns, opts());
  EXPECT_EQ(report.candidates_found, 0);
  EXPECT_EQ(report.applied, 0);
}

TEST(Tuner, AutotuneSchedulesImprovesModeledTime) {
  fv3::FvConfig cfg;
  cfg.npx = 24;
  cfg.npz = 8;
  cfg.ntracers = 2;
  grid::Partitioner part(cfg.npx, 1, 1);
  fv3::ModelState state(cfg, part, 0);
  ir::Program prog = fv3::build_dycore_program(state, fv3::DycoreSchedules::defaults());

  TuningOptions o = opts();
  o.dom = state.domain();
  const double before = model_whole_program(prog, o);
  const int changed = autotune_schedules(prog, o);
  const double after = model_whole_program(prog, o);
  EXPECT_GT(changed, 0);
  EXPECT_LT(after, before);
}

TEST(Tuner, MeasuredExecutionTimesAreFinite) {
  const ir::Program p = pointwise_chain();
  TuningOptions o;
  o.dom = exec::LaunchDomain{16, 16, 4};
  o.measure_execution = true;
  o.measure_reps = 2;
  o.run.num_threads = 2;
  const double t = model_state(p, p.states()[0], o);
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(std::isfinite(t));
}

TEST(Tuner, AutotuneWithMeasuredExecutionKeepsValidSchedules) {
  // The measured path ranks candidates by wall time (noisy on purpose); the
  // invariant is that whatever wins is a valid schedule for its node kind.
  ir::Program prog = pointwise_chain();
  TuningOptions o;
  o.dom = exec::LaunchDomain{16, 16, 4};
  o.measure_execution = true;
  o.measure_reps = 1;
  autotune_schedules(prog, o);
  for (const auto& st : prog.states()) {
    for (const auto& node : st.nodes) {
      if (node.kind != ir::SNode::Kind::Stencil) continue;
      EXPECT_TRUE(sched::is_valid(node.schedule, dsl::IterOrder::Parallel))
          << node.label << ": " << node.schedule.describe();
    }
  }
}

TEST(Tuner, DycoreTransferTuningPreservesSemantics) {
  // The decisive test: apply cutout tuning + transfer to the *real* dycore
  // program and verify a distributed step still produces identical physics.
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.k_split = 1;
  cfg.n_split = 2;
  cfg.ntracers = 2;
  cfg.dt = 300.0;

  fv3::DistributedModel reference(cfg, 6);
  fv3::init_baroclinic(reference);

  fv3::DistributedModel tuned(cfg, 6);
  fv3::init_baroclinic(tuned);

  TuningOptions o;
  o.dom = tuned.state(0).domain();
  o.machine = perf::p100();
  const auto otf = collect_patterns(tune_cutouts(tuned.program(), o, TransformKind::OtfFusion));
  const auto sgf =
      collect_patterns(tune_cutouts(tuned.program(), o, TransformKind::SubgraphFusion));
  std::vector<Pattern> all = otf;
  all.insert(all.end(), sgf.begin(), sgf.end());
  const TransferReport report = transfer(tuned.program(), all, o);
  EXPECT_GT(report.applied, 0);
  EXPECT_LE(report.time_after, report.time_before);

  reference.step();
  tuned.step();

  for (int r = 0; r < 6; ++r) {
    for (const auto& name : fv3::ModelState::prognostic_names(cfg.ntracers)) {
      const double diff =
          FieldD::max_abs_diff(reference.state(r).f(name), tuned.state(r).f(name));
      EXPECT_LT(diff, 1e-10) << "rank " << r << " field " << name;
    }
  }
}

TEST(Tuner, ModelStateMatchesKernelSum) {
  const ir::Program p = pointwise_chain();
  TuningOptions o = opts();
  const double state_time = model_state(p, p.states()[0], o);
  const double program_time = model_whole_program(p, o);
  EXPECT_NEAR(state_time, program_time, 1e-12);
  EXPECT_GT(state_time, 0.0);
}

}  // namespace
}  // namespace cyclone::tune

namespace cyclone::tune {
namespace {

TEST(Tuner, TransferUntilConvergedStops) {
  ir::Program target("multi");
  // Three chained pointwise nodes: two fusions possible, one per pass.
  auto node = [](const std::string& in, const std::string& out, const std::string& fname) {
    dsl::StencilBuilder b(fname);
    auto i = b.field("in");
    auto o = b.field("out");
    b.parallel().full().assign(o, dsl::E(i) * 2.0);
    exec::StencilArgs args;
    args.bind["in"] = in;
    args.bind["out"] = out;
    return ir::SNode::make_stencil(fname, b.build(), args, sched::tuned_horizontal());
  };
  target.append_state(ir::State{"s0",
                                {node("a", "b", "dbl"), node("b", "c", "dbl"),
                                 node("c", "d", "dbl")}});
  target.set_field_meta("b", ir::FieldMeta{ir::FieldKind::Center3D, true});
  target.set_field_meta("c", ir::FieldMeta{ir::FieldKind::Center3D, true});

  TuningOptions o;
  o.dom = exec::LaunchDomain{64, 64, 8};
  std::vector<Pattern> patterns = {{TransformKind::SubgraphFusion, "dbl", "dbl", 1.2},
                                   {TransformKind::SubgraphFusion, "dbl", "sgf.dbl", 1.2},
                                   {TransformKind::SubgraphFusion, "sgf.dbl", "dbl", 1.2}};
  const TransferReport r = transfer_until_converged(target, patterns, o);
  EXPECT_GE(r.applied, 1);
  EXPECT_LE(target.states()[0].nodes.size(), 2u);
  EXPECT_LT(r.time_after, r.time_before);
}

}  // namespace
}  // namespace cyclone::tune
