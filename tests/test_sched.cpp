#include <gtest/gtest.h>

#include "core/sched/schedule.hpp"

namespace cyclone::sched {
namespace {

TEST(Schedule, DefaultsAreValidForParallel) {
  EXPECT_TRUE(is_valid(default_schedule(), dsl::IterOrder::Parallel));
  EXPECT_TRUE(is_valid(tuned_horizontal(), dsl::IterOrder::Parallel));
}

TEST(Schedule, VerticalSolversCannotMapK) {
  Schedule s = tuned_horizontal();
  s.k_as_map = true;
  EXPECT_FALSE(is_valid(s, dsl::IterOrder::Forward));
  EXPECT_FALSE(is_valid(s, dsl::IterOrder::Backward));
  s.k_as_map = false;
  EXPECT_TRUE(is_valid(s, dsl::IterOrder::Forward));
}

TEST(Schedule, CachingRequiresLoopK) {
  Schedule s;
  s.k_as_map = true;
  s.vertical_cache = CacheKind::Registers;
  EXPECT_FALSE(is_valid(s, dsl::IterOrder::Parallel));
  s.k_as_map = false;
  EXPECT_TRUE(is_valid(s, dsl::IterOrder::Parallel));
}

TEST(Schedule, TunedVerticalIsValid) {
  EXPECT_TRUE(is_valid(tuned_vertical(), dsl::IterOrder::Forward));
  EXPECT_EQ(tuned_vertical().vertical_cache, CacheKind::Registers);
  EXPECT_FALSE(tuned_vertical().k_as_map);
}

TEST(Schedule, EnumerationOnlyYieldsValid) {
  for (auto order : {dsl::IterOrder::Parallel, dsl::IterOrder::Forward}) {
    const auto all = enumerate_valid(order);
    EXPECT_FALSE(all.empty());
    for (const auto& s : all) EXPECT_TRUE(is_valid(s, order));
  }
}

TEST(Schedule, EnumerationSmallerForVertical) {
  // Vertical solvers have fewer feasible options (k map excluded).
  EXPECT_GT(enumerate_valid(dsl::IterOrder::Parallel).size(),
            enumerate_valid(dsl::IterOrder::Forward).size());
}

TEST(Schedule, RejectsNegativeAndOversizedTiles) {
  // Tiles larger than any plausible domain would make every domain a single
  // remainder tile; is_valid caps them so enumeration and fuzzed schedules
  // can never produce one (negative sizes were always invalid).
  Schedule s;
  s.tile_i = -1;
  EXPECT_FALSE(is_valid(s, dsl::IterOrder::Parallel));
  s.tile_i = 8;
  s.tile_j = -4;
  EXPECT_FALSE(is_valid(s, dsl::IterOrder::Parallel));
  s.tile_j = 8;
  EXPECT_TRUE(is_valid(s, dsl::IterOrder::Parallel));
  s.tile_i = kMaxTile + 1;
  EXPECT_FALSE(is_valid(s, dsl::IterOrder::Parallel));
  s.tile_i = kMaxTile;
  s.tile_j = kMaxTile;
  EXPECT_TRUE(is_valid(s, dsl::IterOrder::Parallel));
  s.tile_j = kMaxTile + 1;
  EXPECT_FALSE(is_valid(s, dsl::IterOrder::Parallel));
}

TEST(Schedule, EnumerationCoversTiledAndUntiledShapes) {
  const auto all = enumerate_valid(dsl::IterOrder::Parallel);
  bool untiled = false, square = false, skewed = false;
  for (const auto& s : all) {
    if (s.tile_i == 0 && s.tile_j == 0) untiled = true;
    if (s.tile_i == 8 && s.tile_j == 8) square = true;
    if (s.tile_i == 4 && s.tile_j == 16) skewed = true;
    EXPECT_LE(s.tile_i, kMaxTile);
    EXPECT_LE(s.tile_j, kMaxTile);
  }
  EXPECT_TRUE(untiled);
  EXPECT_TRUE(square);
  EXPECT_TRUE(skewed);
}

TEST(Schedule, DescribeMentionsTiles) {
  Schedule s = tuned_horizontal();
  s.tile_i = 8;
  s.tile_j = 4;
  EXPECT_NE(s.describe().find("tile=8x4"), std::string::npos);
}

TEST(Schedule, DescribeMentionsKeyKnobs) {
  const std::string d = tuned_vertical().describe();
  EXPECT_NE(d.find("k=loop"), std::string::npos);
  EXPECT_NE(d.find("cache=reg"), std::string::npos);
  EXPECT_NE(d.find("order=KJI"), std::string::npos);
}

TEST(Schedule, EqualityComparable) {
  EXPECT_EQ(tuned_vertical(), tuned_vertical());
  EXPECT_NE(tuned_vertical(), tuned_horizontal());
}

}  // namespace
}  // namespace cyclone::sched
