// Guided search (core/tune/search.*) and online re-tuning (core/tune/online.*)
// acceptance tests: guided must reach the exhaustive oracle's config from a
// fraction of the evaluations, a warm DB must replay it with zero candidate
// evaluations and zero timed measurements, and online hot-swapped runs must
// stay bitwise identical to never-tuned runs — on a single process and
// through the thread-per-rank concurrent runtime.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "comm/verify_distributed.hpp"
#include "core/dsl/builder.hpp"
#include "core/tune/online.hpp"
#include "core/tune/search.hpp"
#include "core/tune/tunedb.hpp"
#include "core/util/rng.hpp"
#include "core/verify/random_program.hpp"
#include "core/verify/verify.hpp"
#include "fv3/dyn_core.hpp"
#include "fv3/state.hpp"
#include "grid/partitioner.hpp"

namespace cyclone::tune {
namespace {

namespace fs = std::filesystem;
using dsl::E;
using dsl::StencilBuilder;

std::string fresh_db(const std::string& name) {
  fs::create_directories(CYCLONE_TEST_TMPDIR);
  const std::string path = std::string(CYCLONE_TEST_TMPDIR) + "/tune-search-" + name + ".db";
  fs::remove(path);
  return path;
}

/// Three chained pointwise stencils: two fusions available, none of the
/// intermediates marked transient, so every field stays observable and a
/// fused run must write them all bitwise identically.
ir::Program chain_program() {
  ir::Program p("chain3");
  auto node = [](const std::string& in, const std::string& out, const std::string& fname) {
    StencilBuilder b(fname);
    auto i = b.field("in");
    auto o = b.field("out");
    b.parallel().full().assign(o, E(i) * 1.000244140625 + 0.03125);
    exec::StencilArgs args;
    args.bind["in"] = in;
    args.bind["out"] = out;
    // Default (untuned) schedules: the online tuner's schedule stage has a
    // real improvement to find and stage.
    return ir::SNode::make_stencil(fname, b.build(), args);
  };
  p.append_state(ir::State{
      "s0", {node("a", "b", "scale_a"), node("b", "c", "scale_b"), node("c", "d", "scale_c")}});
  return p;
}

/// Diffusion with the laplacian as its own node: the compute state holds a
/// fusible producer/consumer pair, so the online tuner has a real fusion to
/// hot-swap mid-run. `relax` consumes `lap` at zero offset — the only shape
/// where a *visible* (non-transient) intermediate is legally fusible: with
/// an offset read the producer would need an extended apply domain, which
/// fusion must (and does) refuse for surviving outputs. `lap` stays a plain
/// catalog field and must keep its bitwise contents through any rewrite.
ir::Program two_node_diffusion() {
  ir::Program p("diffusion2");
  p.append_state(ir::State{"hx", {ir::SNode::make_halo_exchange("hx.q", {"q"}, 3)}});
  StencilBuilder b1("lap5");
  {
    auto q = b1.field("q");
    auto lap = b1.field("lap");
    b1.parallel().full().assign(lap, q(1, 0) + q(-1, 0) + q(0, 1) + q(0, -1) - E(q) * 4.0);
  }
  StencilBuilder b2("relax");
  {
    auto q = b2.field("q");
    auto lap = b2.field("lap");
    auto out = b2.field("out");
    b2.parallel().full().assign(out, E(q) + E(lap) * 0.1);
  }
  p.append_state(ir::State{"compute",
                           {ir::SNode::make_stencil("lap5", b1.build()),
                            ir::SNode::make_stencil("relax", b2.build())}});
  return p;
}

TuningOptions dycore_opts(const fv3::ModelState& state) {
  TuningOptions o;
  o.dom = state.domain();
  o.machine = perf::p100();
  return o;
}

// ---- guided vs exhaustive --------------------------------------------------

TEST(GuidedSearch, MatchesExhaustiveWithinTwoPercentOnSeededSet) {
  // The acceptance criterion: on a seeded program set, guided reaches a
  // config within 2% of exhaustive-best modeled time while evaluating at
  // most 25% as many candidates in aggregate.
  fv3::FvConfig cfg;
  cfg.npx = 24;
  cfg.npz = 8;
  cfg.ntracers = 2;
  grid::Partitioner part(cfg.npx, 1, 1);
  fv3::ModelState state(cfg, part, 0);

  struct Subject {
    std::string name;
    ir::Program program;
    TuningOptions options;
  };
  std::vector<Subject> subjects;
  subjects.push_back(
      {"dycore", fv3::build_dycore_program(state, fv3::DycoreSchedules::defaults()),
       dycore_opts(state)});
  for (const uint64_t seed : {1ull, 2ull, 3ull, 7ull, 9ull}) {
    TuningOptions o;
    o.dom = exec::LaunchDomain{48, 48, 8};
    subjects.push_back({"fuzz:" + std::to_string(seed), verify::random_program(seed), o});
  }
  {
    // A motif-heavy subject: the same fusible producer/consumer chain in
    // every one of 24 states — the structural shape of a sub-stepped model
    // (one module state per substep) and the showcase of label-based
    // transfer: evaluate the motif once, reuse it 23 times.
    ir::Program motifs("motifs");
    for (int s = 0; s < 24; ++s) {
      ir::Program one = chain_program();
      motifs.append_state(
          ir::State{"s" + std::to_string(s), one.states()[0].nodes});
    }
    motifs.set_field_meta("b", ir::FieldMeta{ir::FieldKind::Center3D, true});
    motifs.set_field_meta("c", ir::FieldMeta{ir::FieldKind::Center3D, true});
    TuningOptions o;
    o.dom = exec::LaunchDomain{48, 48, 8};
    subjects.push_back({"motifs", std::move(motifs), o});
  }

  long evaluated_guided = 0;
  long evaluated_exhaustive = 0;
  for (const auto& subject : subjects) {
    ir::Program exh = subject.program;
    TuningOptions oe = subject.options;
    oe.exhaustive = true;
    const TuneReport re = tune_program(exh, oe);

    ir::Program gui = subject.program;
    TuningOptions og = subject.options;
    og.exhaustive = false;
    const TuneReport rg = tune_program(gui, og);

    EXPECT_LE(rg.modeled_after, re.modeled_after * 1.02)
        << subject.name << ": guided landed " << rg.modeled_after << " vs oracle "
        << re.modeled_after;
    evaluated_guided += rg.search.evaluated;
    evaluated_exhaustive += re.search.evaluated;
  }
  ASSERT_GT(evaluated_exhaustive, 0);
  EXPECT_LE(4 * evaluated_guided, evaluated_exhaustive)
      << "guided evaluated " << evaluated_guided << " of " << evaluated_exhaustive;
}

TEST(GuidedSearch, ExhaustiveOracleStatsCountEveryCandidate) {
  // In oracle mode nothing is pruned and nothing early-exits; the stats must
  // say so, or the guided-vs-exhaustive comparison above compares nothing.
  ir::Program p = chain_program();
  TuningOptions o;
  o.dom = exec::LaunchDomain{64, 64, 8};
  o.exhaustive = true;
  SearchStats stats;
  guided_tune_cutouts(p, o, TransformKind::SubgraphFusion, stats);
  EXPECT_GT(stats.candidates, 0);
  EXPECT_EQ(stats.candidates, stats.evaluated);
  EXPECT_EQ(stats.pruned_saturated, 0);
  EXPECT_EQ(stats.pruned_low_gain, 0);
  EXPECT_EQ(stats.early_exits, 0);
}

// ---- warm DB ---------------------------------------------------------------

TEST(WarmDb, ReplaysBestConfigWithZeroEvaluationsAndZeroTimed) {
  fv3::FvConfig cfg;
  cfg.npx = 24;
  cfg.npz = 8;
  cfg.ntracers = 2;
  grid::Partitioner part(cfg.npx, 1, 1);
  fv3::ModelState state(cfg, part, 0);
  const ir::Program base =
      fv3::build_dycore_program(state, fv3::DycoreSchedules::defaults());
  const std::string path = fresh_db("warm");

  TuneReport cold;
  {
    TuneDb db(path);
    ir::Program p = base;
    cold = tune_program(p, dycore_opts(state), &db);
  }
  EXPECT_FALSE(cold.warm);
  EXPECT_GT(cold.search.evaluated, 0);
  EXPECT_GT(cold.schedules_changed + cold.transfer.applied, 0);

  TuneDb db(path);
  ir::Program p = base;
  // Even with wall-clock measurement requested, a warm replay must not time
  // anything — the zero-measurement contract of the acceptance criteria.
  TuningOptions warm_opts = dycore_opts(state);
  warm_opts.measure_execution = true;
  const TuneReport warm = tune_program(p, warm_opts, &db);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.search.evaluated, 0);
  EXPECT_EQ(warm.search.timed, 0);
  EXPECT_GT(warm.search.db_hits, 0);
  // And it lands on the cold run's config, not a degraded one.
  EXPECT_LE(warm.modeled_after, cold.modeled_after * 1.0001)
      << "warm replay lost the tuned config";
}

TEST(WarmDb, MarkerIsContextSpecific) {
  // A DB warmed on one (machine, backend, threads) context must not claim
  // warmth for another: the other context re-tunes.
  const std::string path = fresh_db("ctx");
  ir::Program p = chain_program();
  TuningOptions o;
  o.dom = exec::LaunchDomain{32, 32, 4};
  {
    TuneDb db(path);
    ir::Program cold = p;
    tune_program(cold, o, &db);
  }
  TuneDb db(path);
  TuningOptions other = o;
  other.run.num_threads = 7;  // different context key
  ir::Program again = p;
  const TuneReport r = tune_program(again, other, &db);
  EXPECT_FALSE(r.warm);
}

// ---- model ordering regressions -------------------------------------------

TEST(PerfModel, ModeledOrderingsPinned) {
  // Search pruning assumes these orderings; if the perf model changes shape,
  // fail here by name instead of silently inverting the search.
  TuningOptions o;
  o.dom = exec::LaunchDomain{64, 64, 16};
  o.machine = perf::p100();

  // 1. Fusing a pointwise chain reduces modeled state time (fewer launches,
  //    shared operand traffic). Mark the intermediates transient so fusion
  //    has dying traffic to eliminate — this test pins the model, not the
  //    bitwise contract.
  auto transient_chain = [] {
    ir::Program p = chain_program();
    for (auto& st : p.states()) {
      for (auto& n : st.nodes) n.schedule = sched::tuned_horizontal();
    }
    p.set_field_meta("b", ir::FieldMeta{ir::FieldKind::Center3D, true});
    p.set_field_meta("c", ir::FieldMeta{ir::FieldKind::Center3D, true});
    return p;
  };
  ir::Program fused = transient_chain();
  const ir::Program unfused = transient_chain();
  const double t_unfused = model_state(unfused, unfused.states()[0], o);
  TuningOptions oracle = o;
  oracle.exhaustive = true;
  const auto pats =
      collect_patterns(tune_cutouts(unfused, oracle, TransformKind::SubgraphFusion));
  ASSERT_FALSE(pats.empty());
  transfer_until_converged(fused, pats, o);
  ASSERT_LT(fused.states()[0].nodes.size(), unfused.states()[0].nodes.size());
  const double t_fused = model_state(fused, fused.states()[0], o);
  EXPECT_LT(t_fused, t_unfused);

  // 2. More cells, more modeled time (the model is traffic-monotone).
  TuningOptions big = o;
  big.dom = exec::LaunchDomain{128, 128, 16};
  EXPECT_GT(model_state(unfused, unfused.states()[0], big), t_unfused);

  // 3. model_whole_program is the invocation-weighted sum of its states.
  ir::Program two = two_node_diffusion();
  const double s0 = model_state(two, two.states()[0], o);
  const double s1 = model_state(two, two.states()[1], o);
  EXPECT_NEAR(model_whole_program(two, o), s0 + s1, 1e-12);
}

// ---- online re-tuning ------------------------------------------------------

TEST(OnlineTuner, HotSwapIsBitwiseIdenticalSingleRank) {
  // Rank count 1 of the acceptance matrix: a solo process advancing the
  // program while the tuner hot-swaps between steps must stay bitwise
  // identical to a never-tuned run, on every backend.
  const exec::LaunchDomain dom{24, 24, 6};
  for (const exec::ExecBackend be :
       {exec::ExecBackend::Interpreter, exec::ExecBackend::OpenMP, exec::ExecBackend::Jit}) {
    exec::RunOptions run;
    run.backend = be;
    run.num_threads = 2;

    ir::Program ref = chain_program();
    ref.set_run_options(run);
    ir::Program subject = chain_program();
    subject.set_run_options(run);
    FieldCatalog cref = verify::make_test_catalog(ref, ref, dom, 0x0A11CE);
    FieldCatalog csub = verify::make_test_catalog(subject, subject, dom, 0x0A11CE);

    OnlineOptions oo;
    oo.tuning.dom = dom;
    oo.tuning.run = run;
    OnlineTuner tuner(subject, oo);
    for (int step = 0; step < 4; ++step) {
      tuner.tune_slice();
      tuner.hot_swap(subject);
      tuner.commit();
      ref.execute(cref, dom);
      subject.execute(csub, dom);
      for (const auto& name : cref.names()) {
        const auto d = verify::compare_fields_bitwise(name, cref.at(name), csub.at(name));
        EXPECT_TRUE(d.ok) << exec::backend_name(be) << " step " << step << " field " << name
                          << ": " << d.max_ulps << " ulps";
      }
    }
    // Not vacuous: the tuner must actually have rewritten something.
    EXPECT_GT(tuner.stats().staged, 0) << exec::backend_name(be);
    EXPECT_GT(tuner.stats().fusions_applied + tuner.stats().schedules_changed, 0);
  }
}

TEST(OnlineTuner, VerifySwapsGuardAcceptsLegalRewrites) {
  ir::Program subject = chain_program();
  OnlineOptions oo;
  oo.tuning.dom = exec::LaunchDomain{16, 16, 4};
  oo.verify_swaps = true;
  OnlineTuner tuner(subject, oo);
  while (!tuner.done()) tuner.tune_slice();
  EXPECT_GT(tuner.stats().verified, 0);
  EXPECT_EQ(tuner.stats().rejected, 0);
}

std::vector<exec::LaunchDomain> domains_for(const grid::Partitioner& part, int nk) {
  std::vector<exec::LaunchDomain> doms;
  for (int r = 0; r < part.num_ranks(); ++r) {
    const auto info = part.info(r);
    exec::LaunchDomain dom{info.ni, info.nj, nk};
    dom.gi0 = info.i0;
    dom.gj0 = info.j0;
    dom.gni = part.n();
    dom.gnj = part.n();
    doms.push_back(dom);
  }
  return doms;
}

TEST(OnlineTuner, ConcurrentRuntimeRetunesAndSwapsBetweenSteps) {
  // Direct runtime check: with run.tune_mode = Online the runtime grows a
  // tuner, swaps improved states into every rank copy at step boundaries,
  // and records its progress in the stats.
  const ir::Program p = two_node_diffusion();
  const grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  const comm::HaloUpdater halo(part, 3);
  const auto doms = domains_for(part, 3);

  std::vector<FieldCatalog> cats;
  std::vector<comm::RankDomain> ranks;
  for (int r = 0; r < 6; ++r) {
    cats.push_back(verify::make_test_catalog(p, p, doms[static_cast<size_t>(r)],
                                             Rng::mix(0xABC, static_cast<uint64_t>(r))));
  }
  for (int r = 0; r < 6; ++r) {
    ranks.push_back(
        comm::RankDomain{&cats[static_cast<size_t>(r)], doms[static_cast<size_t>(r)]});
  }

  comm::RuntimeOptions opt;
  opt.run.tune_mode = exec::TuneMode::Online;
  comm::ConcurrentRuntime rt(p, halo, ranks, opt);
  EXPECT_EQ(rt.online_tuner(), nullptr);  // lazy: created on the first step
  rt.step();
  rt.step();
  rt.step();
  ASSERT_NE(rt.online_tuner(), nullptr);
  const OnlineStats& stats = rt.online_tuner()->stats();
  EXPECT_GT(stats.slices, 0);
  EXPECT_GT(stats.staged, 0);
  // A real fusion (not just a schedule flip) was hot-swapped mid-run.
  EXPECT_GT(stats.fusions_applied, 0);
  // Every staged set was committed after swapping into the rank copies.
  EXPECT_EQ(stats.swapped, stats.staged);
  EXPECT_GT(stats.swapped, 0);
}

TEST(OnlineTuner, DistributedRetunedRunsMatchLockstepBitwise) {
  // The acceptance matrix: online re-tuned concurrent runs vs the untuned
  // lockstep reference, 0 ULP, across backends {interp, openmp, jit} and
  // rank counts {6, 24} (rank count 1 is covered by the solo test above).
  const ir::Program base = two_node_diffusion();
  for (const int nranks : {6, 24}) {
    const grid::Partitioner part = grid::Partitioner::for_ranks(12, nranks);
    for (const exec::ExecBackend be :
         {exec::ExecBackend::Interpreter, exec::ExecBackend::OpenMP, exec::ExecBackend::Jit}) {
      ir::Program p = base;
      exec::RunOptions run = p.run_options();
      run.backend = be;
      run.tune_mode = exec::TuneMode::Online;
      p.set_run_options(run);

      verify::DistributedVerifyOptions opt;
      opt.repetitions = 2;
      opt.thread_budgets = {2};
      opt.steps = 3;  // swaps land between steps, mid-run
      const verify::EquivalenceReport report =
          verify::check_distributed_agrees(p, part, 3, 3, opt);
      EXPECT_TRUE(report.equivalent)
          << nranks << " ranks on " << exec::backend_name(be) << ": "
          << report.first_failure();
    }
  }
}

TEST(OnlineTuner, RecordsIntoDbWhileRunning) {
  const std::string path = fresh_db("online");
  ir::Program subject = two_node_diffusion();
  OnlineOptions oo;
  oo.tuning.dom = exec::LaunchDomain{12, 12, 3};
  oo.db_path = path;
  {
    OnlineTuner tuner(subject, oo);
    while (!tuner.done()) {
      tuner.tune_slice();
      tuner.hot_swap(subject);
      tuner.commit();
    }
  }
  // The next process starts warm: schedules and the completion marker are
  // on disk under this tuning context.
  TuneDb db(path);
  EXPECT_GT(db.stats().loaded_records, 0);
  EXPECT_TRUE(db.has_program(TuneDb::context_of(oo.tuning),
                             TuneDb::program_signature(two_node_diffusion())));
}

}  // namespace
}  // namespace cyclone::tune
