#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/verify/corpus.hpp"
#include "corpus/scenarios.hpp"

namespace cyclone::verify {
namespace {

std::string read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint64_t fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

GoldenField make_field(const std::string& name, uint64_t seed) {
  GoldenField f;
  f.name = name;
  f.tiles = 6;
  f.ni = f.nj = 4;
  f.nk = 1;
  f.checksum = 0x1234abcd0000ull + seed;
  f.samples = {seed, seed + 1, seed + 2, seed + 3};
  return f;
}

GoldenSnapshot make_snapshot(const std::string& scenario) {
  GoldenSnapshot snap;
  snap.scenario = scenario;
  snap.fields = {make_field("h", 10), make_field("u", 20), make_field("q0", 30)};
  return snap;
}

/// A registry of model-free scenarios (the runner just replays fabricated
/// fields) so corpus bookkeeping is testable without running a core.
std::vector<Scenario> fake_registry() {
  std::vector<Scenario> registry;
  for (const std::string name : {"fake_a", "fake_b"}) {
    Scenario sc;
    sc.name = name;
    sc.core = "fake";
    sc.ic = "synthetic";
    sc.grid = "c4";
    sc.run = [name](const std::string&) {
      return ScenarioResult{make_snapshot(name).fields};
    };
    registry.push_back(sc);
  }
  return registry;
}

class CorpusFormatTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "corpus_format_test.gold";
};

TEST_F(CorpusFormatTest, SaveLoadRoundTripsExactly) {
  const GoldenSnapshot snap = make_snapshot("roundtrip");
  snap.save(path_);
  const GoldenSnapshot loaded = GoldenSnapshot::load(path_);
  EXPECT_EQ(loaded.scenario, "roundtrip");
  ASSERT_EQ(loaded.fields.size(), snap.fields.size());
  for (size_t i = 0; i < snap.fields.size(); ++i) EXPECT_EQ(loaded.fields[i], snap.fields[i]);
}

TEST_F(CorpusFormatTest, SingleBitFlipIsDetected) {
  make_snapshot("tamper").save(path_);
  std::string bytes = read_bytes(path_);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  write_bytes(path_, bytes);
  try {
    GoldenSnapshot::load(path_);
    FAIL() << "tampered golden loaded without error";
  } catch (const CorpusError& e) {
    EXPECT_NE(e.reason().find("checksum trailer mismatch"), std::string::npos) << e.what();
    EXPECT_EQ(e.file(), path_);
  }
}

TEST_F(CorpusFormatTest, TruncationIsAStructuredError) {
  make_snapshot("truncate").save(path_);
  const std::string bytes = read_bytes(path_);
  // Shorter than the fixed header: the explicit too-short diagnostic.
  write_bytes(path_, bytes.substr(0, 10));
  try {
    GoldenSnapshot::load(path_);
    FAIL() << "truncated golden loaded without error";
  } catch (const CorpusError& e) {
    EXPECT_NE(e.reason().find("truncated"), std::string::npos) << e.what();
  }
  // Mid-file truncation: caught by the trailer before any length is trusted.
  write_bytes(path_, bytes.substr(0, (bytes.size() * 3) / 5));
  EXPECT_THROW(GoldenSnapshot::load(path_), CorpusError);
}

TEST_F(CorpusFormatTest, GarbageBytesAreRejectedByMagic) {
  std::string garbage(100, '\0');
  for (size_t i = 0; i < garbage.size(); ++i) garbage[i] = static_cast<char>(i * 37 + 11);
  write_bytes(path_, garbage);
  try {
    GoldenSnapshot::load(path_);
    FAIL() << "garbage file loaded without error";
  } catch (const CorpusError& e) {
    EXPECT_NE(e.reason().find("bad magic"), std::string::npos) << e.what();
  }
}

TEST_F(CorpusFormatTest, VersionSkewIsRejectedByName) {
  make_snapshot("version").save(path_);
  std::string bytes = read_bytes(path_);
  // Patch the version word (right after the 8-byte magic) to 99 and restore
  // a valid trailer so only the version check can fire.
  bytes[8] = 99;
  std::string body = bytes.substr(0, bytes.size() - 8);
  const uint64_t trailer = fnv1a(body);
  for (int b = 0; b < 8; ++b) {
    bytes[bytes.size() - 8 + static_cast<size_t>(b)] =
        static_cast<char>((trailer >> (8 * b)) & 0xFF);
  }
  write_bytes(path_, bytes);
  try {
    GoldenSnapshot::load(path_);
    FAIL() << "version-skewed golden loaded without error";
  } catch (const CorpusError& e) {
    EXPECT_NE(e.reason().find("version mismatch: file has v99"), std::string::npos)
        << e.what();
  }
}

class CorpusCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "corpus_check_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    options_.dir = dir_;
    options_.backends = {"b1", "b2"};
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  CorpusOptions options_;
};

TEST_F(CorpusCheckTest, RecordThenVerifyIsClean) {
  EXPECT_EQ(record_corpus(fake_registry(), options_, "b1"), 2);
  const CorpusReport report = check_corpus(fake_registry(), options_);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.scenarios_checked, 2);
  // 2 scenarios x 2 backends x 3 fields.
  EXPECT_EQ(report.comparisons, 12);
}

TEST_F(CorpusCheckTest, TamperedGoldenNamesScenarioAndField) {
  record_corpus(fake_registry(), options_, "b1");
  GoldenSnapshot snap = GoldenSnapshot::load(dir_ + "/fake_a.gold");
  snap.fields[1].checksum ^= 1;  // "u"
  snap.fields[1].samples[0] ^= 1;
  snap.save(dir_ + "/fake_a.gold");

  const CorpusReport report = check_corpus(fake_registry(), options_);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.failures.size(), 2u);  // once per backend
  for (const CorpusFailure& f : report.failures) {
    EXPECT_EQ(f.scenario, "fake_a");
    EXPECT_EQ(f.field, "u");
    EXPECT_NE(f.detail.find("checksum"), std::string::npos) << f.detail;
    EXPECT_NE(f.detail.find("first differing sample"), std::string::npos) << f.detail;
  }
}

TEST_F(CorpusCheckTest, MissingGoldenIsANamedFailure) {
  record_corpus(fake_registry(), options_, "b1");
  std::filesystem::remove(dir_ + "/fake_b.gold");
  const CorpusReport report = check_corpus(fake_registry(), options_);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].scenario, "fake_b");
  EXPECT_NE(report.failures[0].detail.find("cannot open"), std::string::npos);
}

TEST_F(CorpusCheckTest, UnreferencedGoldenFailsTheRun) {
  record_corpus(fake_registry(), options_, "b1");
  make_snapshot("stale").save(dir_ + "/stale.gold");
  CorpusReport report = check_corpus(fake_registry(), options_);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.unreferenced_files.size(), 1u);
  EXPECT_EQ(report.unreferenced_files[0], "stale.gold");

  options_.check_unreferenced = false;
  report = check_corpus(fake_registry(), options_);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST_F(CorpusCheckTest, ScenarioNameEchoIsChecked) {
  record_corpus(fake_registry(), options_, "b1");
  GoldenSnapshot snap = GoldenSnapshot::load(dir_ + "/fake_a.gold");
  snap.scenario = "somebody_else";
  snap.save(dir_ + "/fake_a.gold");
  const CorpusReport report = check_corpus(fake_registry(), options_);
  EXPECT_FALSE(report.ok);
  ASSERT_GE(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].detail.find("golden records scenario"), std::string::npos);
}

TEST_F(CorpusCheckTest, ThrowingScenarioBecomesAFailure) {
  std::vector<Scenario> registry = fake_registry();
  registry[0].run = [](const std::string& backend) -> ScenarioResult {
    throw Error("backend " + backend + " exploded");
  };
  record_corpus({registry[1]}, options_, "b1");
  make_snapshot("fake_a").save(dir_ + "/fake_a.gold");
  const CorpusReport report = check_corpus(registry, options_);
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const CorpusFailure& f : report.failures) {
    if (f.scenario == "fake_a" && f.detail.find("exploded") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

// The committed corpus itself: every registry scenario verifies on the
// reference executor against the goldens in tests/corpus. This is the
// tier-1 anchor that pins both model cores' numerics to the repository.
TEST(CorpusCommitted, VerifiesOnReferenceBackend) {
  CorpusOptions options;
  options.dir = corpus::default_corpus_dir();
  options.backends = {"interp"};
  const CorpusReport report = check_corpus(corpus::standard_scenarios(), options);
  EXPECT_TRUE(report.ok) << report.summary() << (report.failures.empty()
                                                     ? ""
                                                     : "\nfirst: " + report.failures[0].detail);
  EXPECT_GE(report.scenarios_checked, 12);
}

}  // namespace
}  // namespace cyclone::verify
