#include <gtest/gtest.h>

#include <cmath>

#include "grid/geometry.hpp"
#include "grid/partitioner.hpp"

namespace cyclone::grid {
namespace {

TEST(CubeTopology, FaceMappingRoundTrip) {
  for (int f = 0; f < kNumFaces; ++f) {
    for (double a : {-0.9, -0.3, 0.0, 0.4, 0.8}) {
      for (double b : {-0.7, 0.0, 0.6}) {
        const FacePoint p = xyz_to_face(face_to_xyz(f, a, b));
        EXPECT_EQ(p.face, f);
        EXPECT_NEAR(p.a, a, 1e-12);
        EXPECT_NEAR(p.b, b, 1e-12);
      }
    }
  }
}

TEST(CubeTopology, EveryDirectionHasAFace) {
  // Sample directions over the sphere: the inverse mapping must always
  // produce in-range face coordinates.
  for (double z = -0.95; z <= 0.95; z += 0.19) {
    for (double t = 0; t < 6.28; t += 0.37) {
      const double r = std::sqrt(1 - z * z);
      const FacePoint p = xyz_to_face({r * std::cos(t), r * std::sin(t), z});
      EXPECT_GE(p.face, 0);
      EXPECT_LT(p.face, 6);
      EXPECT_LE(std::abs(p.a), 1.0 + 1e-12);
      EXPECT_LE(std::abs(p.b), 1.0 + 1e-12);
    }
  }
}

TEST(CubeTopology, ResolveInteriorIsIdentity) {
  const auto c = resolve_cell(2, 5, 7, 16);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (CellAddr{2, 5, 7}));
}

TEST(CubeTopology, ResolveCornerDiagonalIsEmpty) {
  EXPECT_FALSE(resolve_cell(0, -1, -1, 16).has_value());
  EXPECT_FALSE(resolve_cell(3, 16, 16, 16).has_value());
  EXPECT_FALSE(resolve_cell(5, -2, 17, 16).has_value());
}

TEST(CubeTopology, ResolveMatchesGeometry) {
  // For depth-0 halo cells the index-level resolution must agree with the
  // geometric mapping: the resolved cell center is the closest cell center
  // on the owning face. (At deeper halo levels the gnomonic projection is
  // nonlinear, and the 1:1 *index* correspondence — which is what FV3's
  // halo exchange uses — intentionally diverges from geometric nearness.)
  const int n = 12;
  for (int tile = 0; tile < kNumFaces; ++tile) {
    for (int d = 1; d <= 1; ++d) {
      for (int t = 0; t < n; t += 3) {
        for (auto [i, j] : {std::pair{-d, t}, {n - 1 + d, t}, {t, -d}, {t, n - 1 + d}}) {
          const auto cell = resolve_cell(tile, i, j, n);
          ASSERT_TRUE(cell.has_value()) << tile << " " << i << "," << j;
          EXPECT_NE(cell->tile, tile);
          // Physical position of the halo cell (extended coordinates).
          const double a = (i + 0.5) * 2.0 / n - 1.0;
          const double b = (j + 0.5) * 2.0 / n - 1.0;
          const FacePoint fp = xyz_to_face(face_to_xyz(tile, a, b));
          EXPECT_EQ(fp.face, cell->tile);
          // Nearest cell center on the owning face:
          const int ni = static_cast<int>(std::floor((fp.a + 1.0) * n / 2.0));
          const int nj = static_cast<int>(std::floor((fp.b + 1.0) * n / 2.0));
          EXPECT_EQ(ni, cell->i) << "tile " << tile << " (" << i << "," << j << ") d=" << d;
          EXPECT_EQ(nj, cell->j) << "tile " << tile << " (" << i << "," << j << ") d=" << d;
        }
      }
    }
  }
}

TEST(CubeTopology, ResolveIsInvolutionAcrossEdges) {
  // Taking the neighbor's view of my edge cell must map back to me.
  const int n = 8;
  for (int tile = 0; tile < kNumFaces; ++tile) {
    for (int t = 0; t < n; ++t) {
      const auto across = resolve_cell(tile, -1, t, n);
      ASSERT_TRUE(across.has_value());
      // My cell (0, t) seen from the neighbor: step one further from their
      // cell toward their edge that faces me.
      // Consistency check: resolving their cell from my frame again.
      const auto again = resolve_cell(across->tile, across->i, across->j, n);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *across);  // in-range: identity
    }
  }
}

TEST(CubeTopology, LatLonRange) {
  for (int tile = 0; tile < kNumFaces; ++tile) {
    const LatLon ll = cell_center_latlon(tile, 7.5, 7.5, 16);
    EXPECT_LE(std::abs(ll.lat), M_PI / 2);
    EXPECT_LE(std::abs(ll.lon), M_PI + 1e-12);
  }
  // Face 4 center is the north pole, face 5 the south pole.
  EXPECT_NEAR(cell_center_latlon(4, 7.5, 7.5, 16).lat, M_PI / 2, 1e-9);
  EXPECT_NEAR(cell_center_latlon(5, 7.5, 7.5, 16).lat, -M_PI / 2, 1e-9);
}

TEST(CubeTopology, VectorTransformIsSignedPermutation) {
  const int n = 8;
  for (int tile = 0; tile < kNumFaces; ++tile) {
    for (auto [i, j] : {std::pair{-1, 3}, {n, 4}, {2, -1}, {5, n}}) {
      const auto m = halo_vector_transform(tile, i, j, n);
      // Each row and column has exactly one +-1.
      EXPECT_NEAR(std::abs(m[0]) + std::abs(m[1]), 1.0, 1e-9);
      EXPECT_NEAR(std::abs(m[2]) + std::abs(m[3]), 1.0, 1e-9);
      EXPECT_NEAR(std::abs(m[0]) + std::abs(m[2]), 1.0, 1e-9);
      // Determinant +-1 (orientation may flip across an edge).
      EXPECT_NEAR(std::abs(m[0] * m[3] - m[1] * m[2]), 1.0, 1e-9);
    }
  }
}

TEST(CubeTopology, SameTileTransformIsIdentity) {
  const auto m = halo_vector_transform(0, 3, 3, 8);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 0.0);
  EXPECT_DOUBLE_EQ(m[2], 0.0);
  EXPECT_DOUBLE_EQ(m[3], 1.0);
}

TEST(Partitioner, BasicLayout) {
  const Partitioner p(16, 2, 2);
  EXPECT_EQ(p.num_ranks(), 24);
  const RankInfo r0 = p.info(0);
  EXPECT_EQ(r0.tile, 0);
  EXPECT_EQ(r0.ni, 8);
  EXPECT_TRUE(r0.owns_tile_edge_w());
  const RankInfo r3 = p.info(3);
  EXPECT_EQ(r3.i0, 8);
  EXPECT_EQ(r3.j0, 8);
  const RankInfo last = p.info(23);
  EXPECT_EQ(last.tile, 5);
}

TEST(Partitioner, ValidateRankCountAcceptsElasticRosters) {
  // Every roster an elastic 24 -> 6 -> 24 round-trip can visit on n=12.
  for (int ranks : {6, 12, 24}) {
    EXPECT_FALSE(Partitioner::validate_rank_count(12, ranks).has_value()) << ranks;
  }
}

TEST(Partitioner, ValidateRankCountRejectsBadRosters) {
  // Non-multiples of 6 carry the one-face-per-tile message.
  for (int ranks : {1, 5, 7, 10, 21}) {
    const auto why = Partitioner::validate_rank_count(12, ranks);
    ASSERT_TRUE(why.has_value()) << ranks;
    EXPECT_NE(why->find("multiple of 6"), std::string::npos) << *why;
  }
  // Degenerate inputs.
  EXPECT_TRUE(Partitioner::validate_rank_count(12, 0).has_value());
  EXPECT_TRUE(Partitioner::validate_rank_count(12, -6).has_value());
  EXPECT_TRUE(Partitioner::validate_rank_count(0, 6).has_value());
  // Multiple of 6 but no px*py factorization divides the tile side.
  const auto why = Partitioner::validate_rank_count(12, 30);
  ASSERT_TRUE(why.has_value());
  EXPECT_TRUE(Partitioner::validate_rank_count(12, 30).has_value());
}

TEST(Partitioner, ForRanksMinimumRosterIsWholeTiles) {
  const Partitioner p = Partitioner::for_ranks(12, 6);
  EXPECT_EQ(p.num_ranks(), 6);
  for (int r = 0; r < 6; ++r) {
    const RankInfo info = p.info(r);
    EXPECT_EQ(info.tile, r);
    EXPECT_EQ(info.i0, 0);
    EXPECT_EQ(info.j0, 0);
    EXPECT_EQ(info.ni, 12);
    EXPECT_EQ(info.nj, 12);
  }
}

TEST(Partitioner, ForRanksRejectsInvalidCountWithMessage) {
  EXPECT_THROW(Partitioner::for_ranks(12, 10), std::exception);
  EXPECT_THROW(Partitioner::for_ranks(12, 0), std::exception);
}

TEST(Partitioner, OwnerInverseOfInfo) {
  const Partitioner p(12, 3, 2);
  for (int rank = 0; rank < p.num_ranks(); ++rank) {
    const RankInfo info = p.info(rank);
    EXPECT_EQ(p.owner(info.tile, info.i0, info.j0), rank);
    EXPECT_EQ(p.owner(info.tile, info.i0 + info.ni - 1, info.j0 + info.nj - 1), rank);
  }
}

TEST(Partitioner, ResolveWithinTile) {
  const Partitioner p(16, 2, 2);
  // Rank 0 (tile 0, SW): halo cell to its east belongs to rank 1.
  const auto r = p.resolve(0, 8, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->rank, 1);
  EXPECT_EQ(r->li, 0);
  EXPECT_EQ(r->lj, 3);
}

TEST(Partitioner, ResolveAcrossTiles) {
  const Partitioner p(16, 1, 1);
  const auto r = p.resolve(0, -1, 5);  // west halo of tile 0
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->rank, 0);
  EXPECT_GE(r->li, 0);
  EXPECT_LT(r->li, 16);
}

TEST(Partitioner, RejectsBadSizes) {
  EXPECT_THROW(Partitioner(10, 3, 1), Error);
  EXPECT_THROW(Partitioner(0, 1, 1), Error);
}

TEST(Partitioner, ForRanksFactorizes) {
  const Partitioner p6 = Partitioner::for_ranks(48, 6);
  EXPECT_EQ(p6.num_ranks(), 6);
  const Partitioner p24 = Partitioner::for_ranks(48, 24);
  EXPECT_EQ(p24.num_ranks(), 24);
  EXPECT_EQ(p24.px() * p24.py(), 4);
  const Partitioner p54 = Partitioner::for_ranks(48 * 3, 54);
  EXPECT_EQ(p54.px(), 3);
  EXPECT_EQ(p54.py(), 3);
  EXPECT_THROW(Partitioner::for_ranks(48, 7), Error);
}

TEST(Geometry, MetricFieldsPositiveAndSmooth) {
  const Partitioner part(24, 1, 1);
  const GridGeometry g = GridGeometry::build(part, 2, 3);
  for (int j = -3; j < 27; ++j) {
    for (int i = -3; i < 27; ++i) {
      EXPECT_GT(g.area(i, j), 0.0);
      EXPECT_GT(g.dx(i, j), 0.0);
      EXPECT_GT(g.dy(i, j), 0.0);
      EXPECT_GT(g.sina(i, j), 0.3);  // gnomonic cells never degenerate
      EXPECT_NEAR(g.rarea(i, j) * g.area(i, j), 1.0, 1e-12);
    }
  }
}

TEST(Geometry, TotalAreaApproximatesSphere) {
  const int n = 24;
  const Partitioner part(n, 1, 1);
  double total = 0;
  for (int tile = 0; tile < kNumFaces; ++tile) {
    const GridGeometry g = GridGeometry::build(part, tile, 1);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) total += g.area(i, j);
    }
  }
  const double sphere = 4 * M_PI * kEarthRadius * kEarthRadius;
  EXPECT_NEAR(total / sphere, 1.0, 0.02);
}

TEST(Geometry, CoriolisSignFlipsAcrossEquator) {
  const Partitioner part(16, 1, 1);
  const GridGeometry north = GridGeometry::build(part, 4, 1);
  const GridGeometry south = GridGeometry::build(part, 5, 1);
  EXPECT_GT(north.fcor(8, 8), 0.0);
  EXPECT_LT(south.fcor(8, 8), 0.0);
}

TEST(Geometry, HaloMetricsMatchNeighborTile) {
  // Frame-independent metrics in cross-edge halo cells must equal the
  // owning tile's interior values (so exchanged data stays consistent).
  const int n = 16;
  const Partitioner part(n, 1, 1);
  const GridGeometry g0 = GridGeometry::build(part, 0, 2);
  for (int j = 0; j < n; j += 5) {
    const auto cell = resolve_cell(0, -1, j, n);
    ASSERT_TRUE(cell.has_value());
    const GridGeometry gn = GridGeometry::build(part, cell->tile, 2);
    EXPECT_NEAR(g0.area(-1, j), gn.area(cell->i, cell->j), 1e-6 * g0.area(-1, j));
    EXPECT_NEAR(g0.lat(-1, j), gn.lat(cell->i, cell->j), 1e-9);
  }
}

}  // namespace
}  // namespace cyclone::grid
