#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "comm/verify_distributed.hpp"
#include "core/dsl/builder.hpp"
#include "core/util/rng.hpp"
#include "fv3/verify_distributed.hpp"
#include "grid/partitioner.hpp"

namespace cyclone::comm {
namespace {

using dsl::E;
using dsl::StencilBuilder;

// ---- Test programs ---------------------------------------------------------

/// exchange(q) -> lap = 5-point laplacian of q -> out = 5-point of lap.
/// Transitive read radius of the compute state is 2.
ir::Program make_diffusion_program() {
  ir::Program p("diffusion");
  p.append_state(ir::State{"hx", {ir::SNode::make_halo_exchange("hx.q", {"q"}, 3)}});
  StencilBuilder b("diffuse");
  auto q = b.field("q");
  auto lap = b.field("lap");
  auto out = b.field("out");
  b.parallel().full().assign(
      lap, q(1, 0) + q(-1, 0) + q(0, 1) + q(0, -1) - E(q) * 4.0);
  b.parallel().full().assign(
      out, E(q) + (lap(1, 0) + lap(-1, 0) + lap(0, 1) + lap(0, -1) - E(lap) * 4.0) * 0.1);
  p.append_state(ir::State{"compute", {ir::SNode::make_stencil("diffuse", b.build())}});
  return p;
}

/// Vector exchange (u, v) followed by a divergence-like stencil. Exercises
/// the rotated vector path (sign flips across cube faces) under overlap.
ir::Program make_vector_program() {
  ir::Program p("vector");
  p.append_state(
      ir::State{"hx", {ir::SNode::make_halo_exchange("hx.uv", {"u", "v"}, 3, true)}});
  StencilBuilder b("div");
  auto u = b.field("u");
  auto v = b.field("v");
  auto d = b.field("d");
  b.parallel().full().assign(d, u(1, 0) - u(-1, 0) + v(0, 1) - v(0, -1));
  p.append_state(ir::State{"compute", {ir::SNode::make_stencil("div", b.build())}});
  return p;
}

/// Two program passes through a loop: the second trip consumes halos the
/// first trip's compute dirtied, so the exchange must re-run correctly.
ir::Program make_looped_program() {
  ir::Program p("looped");
  const int hx = p.add_state(ir::State{"hx", {ir::SNode::make_halo_exchange("hx.q", {"q"}, 3)}});
  StencilBuilder b("smooth");
  auto q = b.field("q");
  b.parallel().full().assign(q, (q(1, 0) + q(-1, 0) + q(0, 1) + q(0, -1) + E(q) * 4.0) * 0.125);
  const int sm = p.add_state(ir::State{"smooth", {ir::SNode::make_stencil("smooth", b.build())}});
  p.control_flow().children.push_back(
      ir::CFNode::loop("it", 3, {ir::CFNode::state_ref(hx), ir::CFNode::state_ref(sm)}));
  return p;
}

// ---- Overlap analysis ------------------------------------------------------

TEST(Runtime, OverlapAnalysisComposesReadRadius) {
  const ir::Program p = make_diffusion_program();
  const OverlapPlan plan = analyze_overlap(p, 1);
  EXPECT_TRUE(plan.splittable) << plan.reason;
  // lap reads q at offset 1 (depth 1); out reads lap at offset 1 on top.
  EXPECT_EQ(plan.radius, 2);
  // The halo-only state itself is not a compute state.
  EXPECT_FALSE(analyze_overlap(p, 0).splittable);
}

TEST(Runtime, OverlapAnalysisRejectsAntiDependence) {
  // a = q(+1); q = a: the rim pass would re-read a cell of q that the full
  // launch already overwrote.
  ir::Program p("anti");
  StencilBuilder b("anti");
  auto q = b.field("q");
  auto a = b.field("a");
  b.parallel().full().assign(a, q(1, 0) * 2.0);
  b.parallel().full().assign(q, E(a) + 1.0);
  p.append_state(ir::State{"s", {ir::SNode::make_stencil("anti", b.build())}});
  const OverlapPlan plan = analyze_overlap(p, 0);
  EXPECT_FALSE(plan.splittable);
  EXPECT_NE(plan.reason.find("'q'"), std::string::npos) << plan.reason;
}

TEST(Runtime, OverlapAnalysisRejectsSelfOffsetRead) {
  // q = q(+1): reads its own LHS at a horizontal offset.
  ir::Program p("shift");
  StencilBuilder b("shift");
  auto q = b.field("q");
  b.parallel().full().assign(q, q(1, 0));
  p.append_state(ir::State{"s", {ir::SNode::make_stencil("shift", b.build())}});
  EXPECT_FALSE(analyze_overlap(p, 0).splittable);
}

TEST(Runtime, OverlapAnalysisRejectsMismatchedWriterExtents) {
  // Two nodes write the same field with different apply extensions: a rim
  // launch would run the wider writer over cells whose final value the full
  // launch took from the narrower one.
  ir::Program p("outdep");
  auto make_set = [](const std::string& label, double value) {
    StencilBuilder b(label);
    auto q = b.field("q");
    auto src = b.field("src");
    b.parallel().full().assign(q, E(src) * 0.0 + value);
    return b.build();
  };
  ir::SNode wide = ir::SNode::make_stencil("wide", make_set("wide", 1.0));
  wide.ext = exec::DomainExt{1, 1, 1, 1};
  ir::SNode narrow = ir::SNode::make_stencil("narrow", make_set("narrow", 2.0));
  p.append_state(ir::State{"s", {std::move(wide), std::move(narrow)}});
  const OverlapPlan plan = analyze_overlap(p, 0);
  EXPECT_FALSE(plan.splittable);
  EXPECT_NE(plan.reason.find("extension"), std::string::npos) << plan.reason;
}

TEST(Runtime, OverlapAnalysisAllowsVerticalRecurrence) {
  // Column sweep reading its own k-1 value: every sub-launch re-runs the
  // whole column, so the recurrence recomputes identically.
  ir::Program p("cumsum");
  StencilBuilder b("cumsum");
  auto a = b.field("a");
  b.forward().interval(dsl::inner_levels(1, 0)).assign(a, a.at_k(-1) + E(a));
  p.append_state(ir::State{"s", {ir::SNode::make_stencil("cumsum", b.build())}});
  const OverlapPlan plan = analyze_overlap(p, 0);
  EXPECT_TRUE(plan.splittable) << plan.reason;
  EXPECT_EQ(plan.radius, 0);
}

// ---- Concurrent runtime ----------------------------------------------------

std::vector<exec::LaunchDomain> domains_for(const grid::Partitioner& part, int nk) {
  std::vector<exec::LaunchDomain> doms;
  for (int r = 0; r < part.num_ranks(); ++r) {
    const auto info = part.info(r);
    exec::LaunchDomain dom{info.ni, info.nj, nk};
    dom.gi0 = info.i0;
    dom.gj0 = info.j0;
    dom.gni = part.n();
    dom.gnj = part.n();
    doms.push_back(dom);
  }
  return doms;
}

TEST(Distributed, DiffusionAgreesAcrossRankCountsAndBudgets) {
  // The acceptance sweep: rank counts x thread budgets x >= 20 randomized
  // arrival orders, overlap on and off, all bitwise against lockstep.
  const ir::Program p = make_diffusion_program();
  for (const int nranks : {6, 24}) {
    const grid::Partitioner part = grid::Partitioner::for_ranks(12, nranks);
    verify::DistributedVerifyOptions opt;
    opt.repetitions = 20;
    const verify::EquivalenceReport report =
        verify::check_distributed_agrees(p, part, 3, 3, opt);
    EXPECT_TRUE(report.equivalent) << nranks << " ranks: " << report.first_failure();
    // budgets {1,2} x overlap {on,off} x 20 reps.
    EXPECT_EQ(report.domains.size(), 80u);
  }
}

TEST(Distributed, VectorExchangeAgrees) {
  const ir::Program p = make_vector_program();
  const grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  verify::DistributedVerifyOptions opt;
  opt.repetitions = 5;
  const verify::EquivalenceReport report = verify::check_distributed_agrees(p, part, 4, 3, opt);
  EXPECT_TRUE(report.equivalent) << report.first_failure();
}

TEST(Distributed, LoopedExchangeAgreesOverSteps) {
  const ir::Program p = make_looped_program();
  const grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  verify::DistributedVerifyOptions opt;
  opt.repetitions = 5;
  opt.steps = 2;
  const verify::EquivalenceReport report = verify::check_distributed_agrees(p, part, 3, 3, opt);
  EXPECT_TRUE(report.equivalent) << report.first_failure();
}

TEST(Distributed, OverlapActuallySplitsStates) {
  // With overlap on, the diffusion step must be executed as interior + rim
  // (observable through the runtime stats), and still match lockstep (the
  // agreement is asserted by the sweep above; here we pin the mechanism).
  const ir::Program p = make_diffusion_program();
  const grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  const HaloUpdater halo(part, 3);
  const auto doms = domains_for(part, 3);

  std::vector<FieldCatalog> cats;
  std::vector<RankDomain> ranks;
  for (int r = 0; r < 6; ++r) {
    cats.push_back(verify::make_test_catalog(p, p, doms[static_cast<size_t>(r)],
                                             Rng::mix(0xABC, static_cast<uint64_t>(r))));
  }
  for (int r = 0; r < 6; ++r) {
    ranks.push_back(RankDomain{&cats[static_cast<size_t>(r)], doms[static_cast<size_t>(r)]});
  }

  ConcurrentRuntime rt(p, halo, ranks, RuntimeOptions{});
  EXPECT_TRUE(rt.plan(1).splittable);
  rt.step();
  rt.step();
  EXPECT_EQ(rt.stats().steps, 2);
  EXPECT_EQ(rt.stats().halo_states, 2);
  EXPECT_EQ(rt.stats().overlapped_states, 2);
}

TEST(Distributed, DycoreConcurrentMatchesLockstepBitwise) {
  // Full FV3 program graph: acoustic loop, transport, remap, every halo
  // node — two timesteps, compared field by field at 0 ULP.
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.k_split = 1;
  cfg.n_split = 2;
  cfg.ntracers = 2;
  cfg.dt = 300.0;

  fv3::DycoreVerifyOptions opt;
  opt.steps = 2;
  opt.run.threads_per_rank = 2;
  opt.runtime.channel.arrival_jitter_seed = 0xFEED;
  const verify::EquivalenceReport report = fv3::verify_concurrent_dycore(cfg, 6, opt);
  EXPECT_TRUE(report.equivalent) << report.first_failure();
}

TEST(Distributed, RankFailurePropagatesAndAbortsChannel) {
  // A program whose stencil divides by a field that rank 0 zeroes is too
  // contrived; instead drive the failure through a rank-count mismatch at
  // construction and through a missing field at step time.
  const ir::Program p = make_diffusion_program();
  const grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  const HaloUpdater halo(part, 3);
  const auto doms = domains_for(part, 3);

  std::vector<FieldCatalog> cats(6);
  std::vector<RankDomain> ranks;
  for (int r = 0; r < 6; ++r) {
    if (r != 2) {
      cats[static_cast<size_t>(r)] = verify::make_test_catalog(
          p, p, doms[static_cast<size_t>(r)], Rng::mix(0xABC, static_cast<uint64_t>(r)));
    }
    // Rank 2's catalog is empty: its thread throws on the first field lookup,
    // and the abort must unblock every other rank's recv.
    ranks.push_back(RankDomain{&cats[static_cast<size_t>(r)], doms[static_cast<size_t>(r)]});
  }
  RuntimeOptions opt;
  opt.channel.recv_timeout_seconds = 30.0;
  ConcurrentRuntime rt(p, halo, ranks, opt);
  EXPECT_THROW(rt.step(), Error);
}

// ---- Channel ---------------------------------------------------------------

TEST(Channel, RecvBlocksUntilCrossThreadSend) {
  ConcurrentComm comm(2);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    comm.isend(0, 1, 4, {42.0});
  });
  const auto data = comm.recv(1, 0, 4);  // blocks until the send lands
  sender.join();
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0], 42.0);
  EXPECT_TRUE(comm.all_drained());
}

TEST(Channel, FifoPreservedUnderJitter) {
  ConcurrentComm::Options opt;
  opt.arrival_jitter_seed = 7;
  opt.arrival_jitter_max_us = 300;
  ConcurrentComm comm(2, opt);
  for (int i = 0; i < 16; ++i) comm.isend(0, 1, 1, {static_cast<double>(i)});
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(comm.recv(1, 0, 1)[0], static_cast<double>(i));
  }
}

TEST(Channel, AbortWakesBlockedRecv) {
  ConcurrentComm comm(2);
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    comm.abort("neighbor died");
  });
  try {
    (void)comm.recv(1, 0, 4);
    FAIL() << "expected abort to interrupt recv";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("neighbor died"), std::string::npos);
  }
  aborter.join();
}

TEST(Channel, ConcurrentAbortsKeepFirstReasonAndAppendRest) {
  // Two ranks failing at once race to abort the channel. The first reason
  // must win the headline and the second must still be recorded — losing
  // either would hide a root cause from the failure report.
  for (int trial = 0; trial < 20; ++trial) {
    ConcurrentComm comm(2);
    std::thread a([&] { comm.abort("rank 0 died"); });
    std::thread b([&] { comm.abort("rank 1 died"); });
    a.join();
    b.join();
    try {
      (void)comm.recv(1, 0, 4);
      FAIL() << "expected abort to interrupt recv";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("rank 0 died"), std::string::npos) << msg;
      EXPECT_NE(msg.find("rank 1 died"), std::string::npos) << msg;
      EXPECT_NE(msg.find("; also: "), std::string::npos) << msg;
    }
  }
}

TEST(Channel, TimeoutErrorListsPendingMessages) {
  ConcurrentComm::Options opt;
  opt.recv_timeout_seconds = 0.05;
  ConcurrentComm comm(3, opt);
  comm.isend(0, 1, 7, {1.0, 2.0, 3.0});
  try {
    (void)comm.recv(2, 1, 5);  // never sent
    FAIL() << "expected timeout";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("recv deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("0->1 tag 7"), std::string::npos) << msg;
  }
}

TEST(Channel, CountersConsistentUnderConcurrency) {
  ConcurrentComm comm(4);
  std::vector<std::thread> threads;
  for (int src = 0; src < 4; ++src) {
    threads.emplace_back([&, src] {
      for (int m = 0; m < 50; ++m) {
        comm.isend(src, (src + 1) % 4, 1, {1.0, 2.0});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(comm.total_messages(), 200);
  EXPECT_EQ(comm.total_bytes(), 200 * 2 * 8);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(comm.messages_from(r), 50);
    EXPECT_EQ(comm.bytes_from(r), 50 * 2 * 8);
  }
  for (int dst = 0; dst < 4; ++dst) {
    for (int m = 0; m < 50; ++m) (void)comm.recv(dst, (dst + 3) % 4, 1);
  }
  EXPECT_TRUE(comm.all_drained());
}

}  // namespace
}  // namespace cyclone::comm
