// Focused tests for the executor features the FV3 port depends on: per-call
// extended compute domains (DomainExt), single-level (2-D) field broadcast,
// interface-field interval clipping, and temporary pooling.

#include <gtest/gtest.h>

#include "core/dsl/builder.hpp"
#include "core/exec/interpreter.hpp"
#include "core/exec/tape.hpp"
#include "core/util/rng.hpp"

namespace cyclone::exec {
namespace {

using dsl::E;
using dsl::StencilBuilder;

TEST(DomainExt, ExtendsApplyRectangleAllSides) {
  StencilBuilder b("mark");
  auto q = b.field("q");
  b.parallel().full().assign(q, 1.0);

  FieldCatalog cat;
  cat.create("q", 6, 6, 2, HaloSpec{3, 3}).fill(0.0);
  LaunchDomain dom{6, 6, 2};
  dom.ext = DomainExt{2, 1, 0, 3};
  CompiledStencil(b.build()).run(cat, dom);

  EXPECT_EQ(cat.at("q")(-2, 0, 0), 1.0);   // ilo extension
  EXPECT_EQ(cat.at("q")(-3, 0, 0), 0.0);   // beyond it
  EXPECT_EQ(cat.at("q")(6, 0, 0), 1.0);    // ihi extension
  EXPECT_EQ(cat.at("q")(7, 0, 0), 0.0);
  EXPECT_EQ(cat.at("q")(0, -1, 0), 0.0);   // jlo not extended
  EXPECT_EQ(cat.at("q")(0, 8, 1), 1.0);    // jhi extension
}

TEST(DomainExt, RegionsStillResolveAgainstTrueTileEdges) {
  StencilBuilder b("edge");
  auto q = b.field("q");
  b.parallel().full().assign_in(dsl::region_i_end(1), q, 9.0);

  FieldCatalog cat;
  cat.create("q", 6, 6, 1, HaloSpec{3, 3}).fill(0.0);
  LaunchDomain dom{6, 6, 1};
  dom.gni = 6;
  dom.gnj = 6;
  dom.ext = DomainExt{0, 2, 0, 0};
  CompiledStencil(b.build()).run(cat, dom);
  // The region is the global row i = 5, not the extended rows 6-7.
  EXPECT_EQ(cat.at("q")(5, 2, 0), 9.0);
  EXPECT_EQ(cat.at("q")(6, 2, 0), 0.0);
  EXPECT_EQ(cat.at("q")(7, 2, 0), 0.0);
}

TEST(DomainExt, TempsCoverExtendedRect) {
  // A temp consumed at an offset, on an extended launch: its allocation
  // must grow with the extension or writes would run out of bounds.
  StencilBuilder b("chain");
  auto in = b.field("in");
  auto out = b.field("out");
  auto tmp = b.temp("tmp");
  b.parallel().full().assign(tmp, in(-1, 0) + in(1, 0)).assign(out, tmp(-1, 0) + tmp(1, 0));

  FieldCatalog cat;
  auto& in_f = cat.create("in", 8, 8, 2, HaloSpec{3, 3});
  cat.create("out", 8, 8, 2, HaloSpec{3, 3});
  in_f.fill_with([](int i, int, int) { return static_cast<double>(i); });
  LaunchDomain dom{8, 8, 2};
  dom.ext = DomainExt{1, 1, 1, 1};
  CompiledStencil(b.build()).run(cat, dom);
  for (int i = -1; i < 9; ++i) EXPECT_DOUBLE_EQ(cat.at("out")(i, 4, 1), 4.0 * i);
}

TEST(Broadcast, TwoDFieldReadAtAllLevels) {
  StencilBuilder b("scale_by_2d");
  auto q = b.field("q");
  auto f2d = b.field("f2d");
  b.parallel().full().assign(q, E(q) * E(f2d));

  FieldCatalog cat;
  cat.create("q", 4, 4, 5).fill(2.0);
  cat.create("f2d", 4, 4, 1).fill_with([](int i, int j, int) { return i + 10.0 * j; });
  CompiledStencil(b.build()).run(cat, LaunchDomain{4, 4, 5});
  for (int k = 0; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(cat.at("q")(2, 3, k), 2.0 * (2 + 30));
  }
}

TEST(Broadcast, TwoDFieldWrittenFromAnyLevelInterval) {
  // Writing a 2-D field inside a 3-D launch lands on the single plane
  // (GT4Py IJ-field semantics); the surviving value is the last level's.
  StencilBuilder b("collapse");
  auto ps = b.field("ps");
  auto pe = b.field("pe");
  b.parallel().interval(dsl::last_levels(1)).assign(ps, E(pe));

  FieldCatalog cat;
  cat.create("ps", 3, 3, 1);
  cat.create("pe", 3, 3, 6).fill_with([](int, int, int k) { return 100.0 * k; });
  CompiledStencil(b.build()).run(cat, LaunchDomain{3, 3, 6});
  EXPECT_DOUBLE_EQ(cat.at("ps")(1, 1, 0), 500.0);
}

TEST(Broadcast, RefAndTapeAgree) {
  StencilBuilder b("mix");
  auto q = b.field("q");
  auto m = b.field("metric");
  b.parallel().full().assign(q, E(q) + m(1, 0) - m(-1, 0));

  auto make = [](FieldCatalog& cat) {
    Rng rng(3);
    cat.create("q", 6, 5, 4, HaloSpec{1, 1}).fill(1.0);
    cat.create("metric", 6, 5, 1, HaloSpec{1, 1})
        .fill_with([&](int, int, int) { return rng.uniform(0, 1); });
  };
  FieldCatalog a, c;
  make(a);
  make(c);
  CompiledStencil(b.build()).run(a, LaunchDomain{6, 5, 4});
  RefExecutor(b.build()).run(c, LaunchDomain{6, 5, 4});
  EXPECT_EQ(FieldD::max_abs_diff(a.at("q"), c.at("q")), 0.0);
}

TEST(InterfaceFields, IntervalBeyondDomainClipsToAllocation) {
  // interval [1, nk+1) writes the nk+1-level field's last level; a center
  // field in the same launch is untouched beyond its nk levels.
  StencilBuilder b("iface");
  auto pe = b.field("pe");
  auto delp = b.field("delp");
  b.forward()
      .interval(dsl::make_interval(dsl::KBound{1, false}, dsl::KBound{1, true}))
      .assign(pe, pe.at_k(-1) + delp.at_k(-1));

  FieldCatalog cat;
  cat.create("pe", 4, 4, 6).fill(0.0);
  cat.create("delp", 4, 4, 5).fill(10.0);
  cat.at("pe")(1, 1, 0) = 100.0;
  CompiledStencil(b.build()).run(cat, LaunchDomain{4, 4, 5});
  EXPECT_DOUBLE_EQ(cat.at("pe")(1, 1, 5), 150.0);  // level nk written
}

TEST(TempPooling, RepeatedRunsReuseAndStayCorrect) {
  StencilBuilder b("sum3");
  auto in = b.field("in");
  auto out = b.field("out");
  auto tmp = b.temp("tmp");
  b.parallel().full().assign(tmp, E(in) * 2.0).assign(out, tmp(-1, 0) + tmp(1, 0));

  CompiledStencil cs(b.build());
  FieldCatalog cat;
  auto& in_f = cat.create("in", 8, 8, 3, HaloSpec{2, 2});
  cat.create("out", 8, 8, 3, HaloSpec{2, 2});
  in_f.fill_with([](int i, int, int) { return static_cast<double>(i); });

  FieldD first("first", 8, 8, 3, HaloSpec{2, 2});
  cs.run(cat, LaunchDomain{8, 8, 3});
  first.copy_from(cat.at("out"));
  for (int rep = 0; rep < 4; ++rep) cs.run(cat, LaunchDomain{8, 8, 3});
  EXPECT_EQ(FieldD::max_abs_diff(first, cat.at("out")), 0.0);

  // A geometry change rebuilds the pool rather than corrupting it.
  FieldCatalog small;
  auto& sin_f = small.create("in", 4, 4, 2, HaloSpec{2, 2});
  small.create("out", 4, 4, 2, HaloSpec{2, 2});
  sin_f.fill(1.0);
  cs.run(small, LaunchDomain{4, 4, 2});
  EXPECT_DOUBLE_EQ(small.at("out")(1, 1, 1), 4.0);
}

}  // namespace
}  // namespace cyclone::exec
