// Translation validation of the schedule-aware OpenMP execution engine: every
// enumerated schedule, thread count, and tile shape must reproduce the serial
// reference interpreter bitwise (0 ULP). The engine's determinism contract —
// static tile ownership, no cross-thread reductions, a barrier per statement —
// makes this a hard equality, not a tolerance check.

#include <gtest/gtest.h>

#include <set>

#include "core/dsl/builder.hpp"
#include "core/exec/engine.hpp"
#include "core/util/rng.hpp"
#include "core/verify/random_program.hpp"
#include "core/verify/verify.hpp"

namespace cyclone::exec {
namespace {

using dsl::E;
using dsl::StencilBuilder;

constexpr uint64_t kFuzzBase = 0x9A7A11E1ull;

// ---------------------------------------------------------------- tiling ----

TEST(DecomposeTiles, UntiledIsOneTile) {
  const auto tiles = decompose_tiles(Rect{{0, 10}, {0, 7}}, 0, 0);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0].i.lo, 0);
  EXPECT_EQ(tiles[0].i.hi, 10);
  EXPECT_EQ(tiles[0].j.lo, 0);
  EXPECT_EQ(tiles[0].j.hi, 7);
}

TEST(DecomposeTiles, EmptyRectHasNoTiles) {
  EXPECT_TRUE(decompose_tiles(Rect{{3, 3}, {0, 5}}, 4, 4).empty());
  EXPECT_TRUE(decompose_tiles(Rect{{5, 2}, {0, 5}}, 4, 4).empty());
}

/// Tiles must partition the rectangle exactly: every cell in exactly one
/// tile, every tile non-empty, remainder tiles clipped (never negative).
void expect_exact_partition(const Rect& rect, int ti, int tj) {
  const auto tiles = decompose_tiles(rect, ti, tj);
  std::set<std::pair<int, int>> covered;
  for (const auto& t : tiles) {
    EXPECT_GT(t.i.size(), 0);
    EXPECT_GT(t.j.size(), 0);
    EXPECT_GE(t.i.lo, rect.i.lo);
    EXPECT_LE(t.i.hi, rect.i.hi);
    for (int j = t.j.lo; j < t.j.hi; ++j) {
      for (int i = t.i.lo; i < t.i.hi; ++i) {
        EXPECT_TRUE(covered.insert({i, j}).second) << "cell (" << i << "," << j << ") twice";
      }
    }
  }
  EXPECT_EQ(covered.size(),
            static_cast<size_t>(rect.i.size()) * static_cast<size_t>(rect.j.size()));
}

TEST(DecomposeTiles, RemainderTilesAreClipped) {
  expect_exact_partition(Rect{{0, 10}, {0, 9}}, 4, 4);   // 2 remainder, 1 remainder
  expect_exact_partition(Rect{{0, 7}, {0, 13}}, 8, 8);   // tile wider than rect
  expect_exact_partition(Rect{{0, 12}, {0, 12}}, 4, 16);  // skewed shape
  expect_exact_partition(Rect{{0, 5}, {0, 5}}, 1, 1);    // one cell per tile
}

TEST(DecomposeTiles, NegativeLowBoundsTileFromActualCorner) {
  // Halo-extended rectangles start below zero (DomainExt); tiling must start
  // at the actual low corner, not at zero.
  expect_exact_partition(Rect{{-3, 7}, {-2, 9}}, 4, 4);
  const auto tiles = decompose_tiles(Rect{{-3, 7}, {0, 1}}, 4, 0);
  ASSERT_FALSE(tiles.empty());
  EXPECT_EQ(tiles[0].i.lo, -3);
  EXPECT_EQ(tiles[0].i.hi, 1);
}

TEST(DecomposeTiles, OversizedTileClipsToDomain) {
  const auto tiles = decompose_tiles(Rect{{0, 6}, {0, 4}}, sched::kMaxTile, sched::kMaxTile);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0].i.size(), 6);
  EXPECT_EQ(tiles[0].j.size(), 4);
}

TEST(RunOptions, ResolvedNumThreads) {
  RunOptions serial;
  serial.parallel = false;
  serial.num_threads = 8;  // ignored: parallel off wins
  EXPECT_EQ(resolved_num_threads(serial), 1);
  RunOptions explicit_count;
  explicit_count.num_threads = 5;
  EXPECT_EQ(resolved_num_threads(explicit_count), 5);
  EXPECT_GE(resolved_num_threads(RunOptions{}), 1);
}

// ------------------------------------------------- schedule sweep oracle ----

/// Horizontal program: offset reads, an intra-interval dependency on a field
/// written by an earlier statement (exercises the per-statement barrier and
/// the non-independent fallback), and a second node consuming the first.
ir::Program horizontal_program() {
  ir::Program p("horizontal");
  StencilBuilder b("diffuse");
  auto in = b.field("in");
  auto mid = b.field("mid");
  auto out = b.field("out");
  {
    auto c = b.parallel().full();
    c.assign(mid, in(-1, 0) + in(1, 0) + in(0, -1) + in(0, 1) - 4.0 * E(in));
    c.assign(out, mid(-1, 0) + mid(1, 0) + 0.5 * E(mid));  // horiz read of mid
  }
  StencilBuilder b2("relax");
  auto out2 = b2.field("out");
  auto acc = b2.field("acc");
  b2.parallel().full().assign(acc, E(acc) + 0.25 * E(out2));
  p.append_state(
      ir::State{"s0",
                {ir::SNode::make_stencil("diffuse", b.build(), {}, sched::default_schedule()),
                 ir::SNode::make_stencil("relax", b2.build(), {}, sched::default_schedule())}});
  return p;
}

/// Vertical program: a forward recurrence and a backward substitution (the
/// column-sweep path, with k-offset self-reads that force sequential k).
ir::Program vertical_program() {
  ir::Program p("vertical");
  StencilBuilder b("sweep");
  auto q = b.field("q");
  auto w = b.field("w");
  b.forward().interval(dsl::first_levels(1)).assign(q, E(w) * 0.5);
  b.forward().interval(dsl::inner_levels(1, 0)).assign(q, q.at_k(-1) * 0.9 + E(w));
  b.backward().interval(dsl::last_levels(1)).assign(w, E(q));
  b.backward().interval(dsl::inner_levels(0, 1)).assign(w, w.at_k(1) * 0.8 + E(q));
  p.append_state(ir::State{
      "s0", {ir::SNode::make_stencil("sweep", b.build(), {}, sched::tuned_vertical())}});
  return p;
}

/// Domains for the schedule sweep: a bulk shape with remainder tiles under
/// every enumerated tile size, plus the degenerate 1xN and Nx1 strips.
std::vector<LaunchDomain> sweep_domains() {
  return {LaunchDomain{13, 11, 6}, LaunchDomain{1, 7, 5}, LaunchDomain{7, 1, 5}};
}

TEST(ParallelEngine, EveryParallelScheduleMatchesInterpreterBitwise) {
  ir::Program prog = horizontal_program();
  verify::VerifyOptions vo;
  vo.domains = sweep_domains();
  for (const auto& s : sched::enumerate_valid(dsl::IterOrder::Parallel)) {
    for (auto& node : prog.states()[0].nodes) node.schedule = s;
    for (int threads : {2, 7}) {
      RunOptions run;
      run.num_threads = threads;
      const auto report = verify::check_parallel_agrees(prog, run, -1, -1, vo);
      EXPECT_TRUE(report.equivalent) << "schedule [" << s.describe() << "] threads=" << threads
                                     << " " << report.first_failure();
    }
  }
}

TEST(ParallelEngine, EveryVerticalScheduleMatchesInterpreterBitwise) {
  ir::Program prog = vertical_program();
  verify::VerifyOptions vo;
  vo.domains = sweep_domains();
  for (const auto& s : sched::enumerate_valid(dsl::IterOrder::Forward)) {
    for (auto& node : prog.states()[0].nodes) node.schedule = s;
    for (int threads : {2, 7}) {
      RunOptions run;
      run.num_threads = threads;
      const auto report = verify::check_parallel_agrees(prog, run, -1, -1, vo);
      EXPECT_TRUE(report.equivalent) << "schedule [" << s.describe() << "] threads=" << threads
                                     << " " << report.first_failure();
    }
  }
}

TEST(ParallelEngine, SerialRunOptionIsStillBitwiseIdentical) {
  // parallel=false must take the exact serial path (a team of one).
  RunOptions serial;
  serial.parallel = false;
  const auto report = verify::check_parallel_agrees(horizontal_program(), serial);
  EXPECT_TRUE(report.equivalent) << report.first_failure();
}

// ----------------------------------------------------- fuzzed 200 sweep -----

/// The acceptance-criteria sweep: 200 fuzzed programs, each executed at
/// thread counts {1, 2, 7} crossed with tile-shape overrides, every run
/// compared bitwise against the serial interpreter. Reduced domain list keeps
/// the 1800-configuration sweep within test-suite budget; the shapes chosen
/// still cover remainder tiles, edge placements, and degenerate strips.
TEST(ParallelVerify, FuzzedProgramsDeterministicAcrossThreadsAndTiles) {
  verify::VerifyOptions vo;
  LaunchDomain corner{9, 7, 6};
  corner.gni = 18;
  corner.gnj = 14;
  corner.gi0 = 9;
  corner.gj0 = 7;
  vo.domains = {LaunchDomain{13, 11, 6}, corner, LaunchDomain{1, 6, 5}};
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t seed = Rng::mix(kFuzzBase, i);
    const ir::Program p = verify::random_program(seed);
    const auto report = verify::check_parallel_determinism(p, vo);
    EXPECT_TRUE(report.equivalent) << "seed=" << seed << " " << report.first_failure();
    if (!report.equivalent) return;  // one reproducer is enough to debug
  }
}

// -------------------------------------------------- mutation catch rate -----

/// Tile-boundary off-by-ones (shifted tile origin, dropped remainder tile)
/// injected into fuzzed programs must be caught by the *parallel* oracle run:
/// threading and tiling must not mask boundary defects. interior_shrink is 0
/// because these defects live exactly at the apply-rect edges; that is sound
/// here since both sides run the same program modulo the injected defect.
TEST(ParallelVerify, TileBoundaryMutationsAreCaughtByParallelOracle) {
  verify::VerifyOptions vo;
  vo.interior_shrink = 0;
  // Domains that own their global-tile edges, so every boundary restriction
  // binds: the whole tile, and a corner placement owning the high edges.
  LaunchDomain high_corner{10, 9, 5};
  high_corner.gni = 20;
  high_corner.gnj = 18;
  high_corner.gi0 = 10;
  high_corner.gj0 = 9;
  vo.domains = {LaunchDomain{12, 10, 6}, high_corner};
  int attempted = 0;
  int caught = 0;
  RunOptions run;
  run.num_threads = 7;
  for (uint64_t i = 0; i < 40; ++i) {
    const uint64_t seed = Rng::mix(kFuzzBase, 8000 + i);
    const ir::Program original = verify::random_program(seed);
    ir::Program mutant = original;
    const std::string defect =
        verify::mutate_program(mutant, seed, verify::MutationClass::TileBoundary);
    if (defect.empty()) continue;
    ++attempted;
    if (!verify::check_equivalent_parallel(original, mutant, run, 5, 4, vo).equivalent) {
      ++caught;
    }
  }
  ASSERT_GE(attempted, 30);
  EXPECT_GE(caught * 10, attempted * 9)
      << "caught only " << caught << "/" << attempted << " tile-boundary defects";
}

}  // namespace
}  // namespace cyclone::exec
