#include <gtest/gtest.h>

#include "core/dsl/builder.hpp"
#include "core/ir/expand.hpp"
#include "core/ir/program.hpp"

namespace cyclone::ir {
namespace {

using dsl::E;
using dsl::FieldVar;
using dsl::StencilBuilder;

dsl::StencilFunc make_increment(const std::string& field, double amount) {
  StencilBuilder b("inc_" + field);
  auto q = b.field(field);
  b.parallel().full().assign(q, E(q) + amount);
  return b.build();
}

dsl::StencilFunc make_vertical_cumsum() {
  StencilBuilder b("cumsum");
  auto a = b.field("a");
  b.forward().interval(dsl::inner_levels(1, 0)).assign(a, a.at_k(-1) + E(a));
  return b.build();
}

TEST(Program, ExecutesStatesInOrder) {
  Program p("test");
  State s1{"first", {SNode::make_stencil("inc1", make_increment("q", 1.0))}};
  State s2{"second", {SNode::make_stencil("dbl", [] {
                        StencilBuilder b("dbl");
                        auto q = b.field("q");
                        b.parallel().full().assign(q, E(q) * 2.0);
                        return b.build();
                      }())}};
  p.append_state(std::move(s1));
  p.append_state(std::move(s2));

  FieldCatalog cat;
  cat.create("q", 2, 2, 1).fill(0.0);
  p.execute(cat, exec::LaunchDomain{2, 2, 1});
  EXPECT_DOUBLE_EQ(cat.at("q")(0, 0, 0), 2.0);  // (0 + 1) * 2
}

TEST(Program, LoopRepeatsBody) {
  Program p("loop");
  const int s = p.add_state(State{"body", {SNode::make_stencil("inc", make_increment("q", 1.0))}});
  p.control_flow().children.push_back(CFNode::loop("it", 5, {CFNode::state_ref(s)}));

  FieldCatalog cat;
  cat.create("q", 2, 2, 1).fill(0.0);
  p.execute(cat, exec::LaunchDomain{2, 2, 1});
  EXPECT_DOUBLE_EQ(cat.at("q")(1, 1, 0), 5.0);
}

TEST(Program, NestedLoopsMultiply) {
  Program p("nest");
  const int s = p.add_state(State{"body", {SNode::make_stencil("inc", make_increment("q", 1.0))}});
  p.control_flow().children.push_back(
      CFNode::loop("outer", 3, {CFNode::loop("inner", 4, {CFNode::state_ref(s)})}));
  EXPECT_EQ(p.state_invocations()[0], 12);

  FieldCatalog cat;
  cat.create("q", 2, 2, 1).fill(0.0);
  p.execute(cat, exec::LaunchDomain{2, 2, 1});
  EXPECT_DOUBLE_EQ(cat.at("q")(0, 0, 0), 12.0);
}

TEST(Program, CallbackRunsAndSeesFields) {
  Program p("cb");
  double observed = -1;
  State s{"st",
          {SNode::make_stencil("inc", make_increment("q", 2.5)),
           SNode::make_callback("observe", [&](FieldCatalog& cat) {
             observed = cat.at("q")(0, 0, 0);
           })}};
  p.append_state(std::move(s));
  FieldCatalog cat;
  cat.create("q", 2, 2, 1).fill(0.0);
  p.execute(cat, exec::LaunchDomain{2, 2, 1});
  EXPECT_DOUBLE_EQ(observed, 2.5);
}

TEST(Program, HaloExchangeDispatchesToHandler) {
  Program p("halo");
  p.append_state(State{"st", {SNode::make_halo_exchange("hx", {"u", "v"}, 3)}});
  FieldCatalog cat;
  std::vector<std::string> seen;
  int seen_width = 0;
  bool seen_vector = true;
  p.execute(cat, exec::LaunchDomain{2, 2, 1},
            [&](const std::vector<std::string>& fields, int width, bool vector) {
              seen = fields;
              seen_width = width;
              seen_vector = vector;
            });
  EXPECT_FALSE(seen_vector);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "u");
  EXPECT_EQ(seen_width, 3);
}

TEST(Program, StatsCountNodes) {
  Program p("stats");
  State s{"st",
          {SNode::make_stencil("a", make_increment("q", 1.0)),
           SNode::make_stencil("b", make_vertical_cumsum()),
           SNode::make_halo_exchange("hx", {"q"}, 3),
           SNode::make_callback("cb", [](FieldCatalog&) {})}};
  const int idx = p.add_state(std::move(s));
  p.control_flow().children.push_back(CFNode::loop("i", 7, {CFNode::state_ref(idx)}));

  const ProgramStats st = p.stats();
  EXPECT_EQ(st.states, 1);
  EXPECT_EQ(st.stencil_nodes, 2);
  EXPECT_EQ(st.stencil_ops, 2);
  EXPECT_EQ(st.halo_exchanges, 1);
  EXPECT_EQ(st.callbacks, 1);
  EXPECT_EQ(st.max_node_invocations, 7);
  EXPECT_GT(st.dataflow_nodes, 4);
}

TEST(Program, ToDotContainsLabels) {
  Program p("dot");
  p.append_state(State{"acoustic", {SNode::make_stencil("smag", make_increment("q", 1.0))}});
  const std::string dot = p.to_dot();
  EXPECT_NE(dot.find("smag"), std::string::npos);
  EXPECT_NE(dot.find("acoustic"), std::string::npos);
}

// ---- Expansion ------------------------------------------------------------

dsl::StencilFunc two_step_pointwise() {
  StencilBuilder b("two_step");
  auto in = b.field("in");
  auto mid = b.field("mid");
  auto out = b.field("out");
  b.parallel().full().assign(mid, E(in) * 2.0).assign(out, E(mid) + 1.0);
  return b.build();
}

dsl::StencilFunc two_step_offset() {
  StencilBuilder b("two_step_off");
  auto in = b.field("in");
  auto mid = b.field("mid");
  auto out = b.field("out");
  b.parallel().full().assign(mid, E(in) * 2.0).assign(out, mid(1, 0) + mid(-1, 0));
  return b.build();
}

TEST(Expand, ThreadFusionMergesPointwiseChain) {
  Program p;
  SNode fused = SNode::make_stencil("s", two_step_pointwise());
  fused.schedule.fuse_thread_level = true;
  SNode unfused = SNode::make_stencil("s", two_step_pointwise());
  unfused.schedule.fuse_thread_level = false;

  const exec::LaunchDomain dom{16, 16, 8};
  EXPECT_EQ(expand_node(fused, p, dom, 1).size(), 1u);
  EXPECT_EQ(expand_node(unfused, p, dom, 1).size(), 2u);
}

TEST(Expand, HorizontalOffsetDependencySplitsKernels) {
  Program p;
  SNode node = SNode::make_stencil("s", two_step_offset());
  node.schedule.fuse_thread_level = true;
  const auto kernels = expand_node(node, p, exec::LaunchDomain{16, 16, 8}, 1);
  EXPECT_EQ(kernels.size(), 2u);  // offset read forces a split
}

TEST(Expand, PrivateTempCausesNoTraffic) {
  // "mid" is a temporary consumed pointwise in the same kernel: it must not
  // appear in the kernel's global field uses.
  StencilBuilder b("priv");
  auto in = b.field("in");
  auto out = b.field("out");
  auto mid = b.temp("mid");
  b.parallel().full().assign(mid, E(in) * 2.0).assign(out, E(mid) + 1.0);

  Program p;
  SNode node = SNode::make_stencil("s", b.build());
  node.schedule.fuse_thread_level = true;
  const auto kernels = expand_node(node, p, exec::LaunchDomain{16, 16, 8}, 1);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].find_field("mid"), nullptr);
  EXPECT_NE(kernels[0].find_field("in"), nullptr);
  EXPECT_NE(kernels[0].find_field("out"), nullptr);
}

TEST(Expand, NonTempIntermediateStaysGlobal) {
  Program p;
  SNode node = SNode::make_stencil("s", two_step_pointwise());
  node.schedule.fuse_thread_level = true;
  const auto kernels = expand_node(node, p, exec::LaunchDomain{16, 16, 8}, 1);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_NE(kernels[0].find_field("mid"), nullptr);  // externally visible
}

TEST(Expand, VerticalSolverHas2DThreads) {
  Program p;
  SNode node = SNode::make_stencil("v", make_vertical_cumsum(), {}, sched::tuned_vertical());
  const auto kernels = expand_node(node, p, exec::LaunchDomain{32, 16, 80}, 1);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].threads, 32 * 16);
  EXPECT_EQ(kernels[0].order, dsl::IterOrder::Forward);
}

TEST(Expand, ParallelMappedKHasFullThreads) {
  Program p;
  SNode node = SNode::make_stencil("h", make_increment("q", 1.0), {}, sched::tuned_horizontal());
  const auto kernels = expand_node(node, p, exec::LaunchDomain{32, 16, 80}, 1);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].threads, 32L * 16 * 80);
}

TEST(Expand, RegionSeparateKernelIsSmall) {
  StencilBuilder b("edge");
  auto q = b.field("q");
  b.parallel()
      .full()
      .assign(q, E(q) * 1.5)
      .assign_in(dsl::region_j_start(1), q, E(q) * 2.0);

  Program p;
  SNode node = SNode::make_stencil("e", b.build());
  node.schedule.fuse_thread_level = true;
  node.schedule.region_strategy = sched::RegionStrategy::SeparateKernels;
  const auto kernels = expand_node(node, p, exec::LaunchDomain{64, 64, 8}, 1);
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_FALSE(kernels[0].is_region_kernel);
  EXPECT_TRUE(kernels[1].is_region_kernel);
  EXPECT_EQ(kernels[1].nj, 1);
  EXPECT_EQ(kernels[1].ni, 64);

  node.schedule.region_strategy = sched::RegionStrategy::Predicated;
  const auto predicated = expand_node(node, p, exec::LaunchDomain{64, 64, 8}, 1);
  ASSERT_EQ(predicated.size(), 1u);
  EXPECT_TRUE(predicated[0].predicated);
}

TEST(Expand, FieldMetaControlsLevels) {
  StencilBuilder b("meta");
  auto p2d = b.field("p2d");
  auto intf = b.field("intf");
  b.parallel().full().assign(p2d, E(intf) + 1.0);

  Program p;
  p.set_field_meta("p2d", FieldMeta{FieldKind::Plane2D});
  p.set_field_meta("intf", FieldMeta{FieldKind::Interface3D});
  SNode node = SNode::make_stencil("m", b.build(), {}, sched::tuned_horizontal());
  const auto kernels = expand_node(node, p, exec::LaunchDomain{10, 10, 4}, 1);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].find_field("p2d")->elems, 100);        // 2-D
  EXPECT_EQ(kernels[0].find_field("intf")->elems, 100 * 5);   // nk + 1
}

TEST(Expand, InvocationsPropagateFromLoops) {
  Program p;
  const int s = p.add_state(
      State{"body", {SNode::make_stencil("inc", make_increment("q", 1.0))}});
  p.control_flow().children.push_back(CFNode::loop("i", 6, {CFNode::state_ref(s)}));
  const auto kernels = expand_program(p, exec::LaunchDomain{8, 8, 4});
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].invocations, 6);
  const auto stats = expansion_stats(kernels);
  EXPECT_EQ(stats.unique_kernels, 1);
  EXPECT_EQ(stats.total_launches, 6);
}

TEST(Expand, IntervalFusionForVerticalSolvers) {
  StencilBuilder b("multi_iv");
  auto a = b.field("a");
  auto f = b.forward();
  f.interval(dsl::first_levels(1)).assign(a, 0.0);
  f.interval(dsl::inner_levels(1, 0)).assign(a, a.at_k(-1) + 1.0);

  Program p;
  SNode node = SNode::make_stencil("v", b.build(), {}, sched::tuned_vertical());
  EXPECT_EQ(expand_node(node, p, exec::LaunchDomain{8, 8, 10}, 1).size(), 1u);

  node.schedule.fuse_intervals = false;
  EXPECT_EQ(expand_node(node, p, exec::LaunchDomain{8, 8, 10}, 1).size(), 2u);
}

TEST(Expand, CarriedCacheFlagSet) {
  Program p;
  SNode node = SNode::make_stencil("v", make_vertical_cumsum(), {}, sched::tuned_vertical());
  const auto kernels = expand_node(node, p, exec::LaunchDomain{8, 8, 10}, 1);
  ASSERT_EQ(kernels.size(), 1u);
  const auto* use = kernels[0].find_field("a");
  ASSERT_NE(use, nullptr);
  EXPECT_TRUE(use->carried_cached);  // reads a at k and k-1, cached

  node.schedule.vertical_cache = sched::CacheKind::None;
  const auto uncached = expand_node(node, p, exec::LaunchDomain{8, 8, 10}, 1);
  EXPECT_FALSE(uncached[0].find_field("a")->carried_cached);
}

}  // namespace
}  // namespace cyclone::ir
