#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/dsl/builder.hpp"
#include "core/ir/lint.hpp"
#include "core/orch/orchestrate.hpp"
#include "core/tune/tuner.hpp"
#include "core/util/rng.hpp"
#include "core/verify/pipeline.hpp"
#include "core/verify/random_program.hpp"
#include "core/verify/verify.hpp"
#include "fv3/driver.hpp"

namespace cyclone::verify {
namespace {

/// Base seed of every fuzz loop in this file. Each test derives decorrelated
/// per-iteration seeds via Rng::mix, so a failure log line like "seed=..."
/// reproduces the exact program standalone.
constexpr uint64_t kFuzzBase = 0x5EEDFACEull;

TEST(UlpDistance, BasicProperties) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0.0);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0.0);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1.0);
  EXPECT_EQ(ulp_distance(2.0, std::nextafter(std::nextafter(2.0, 3.0), 3.0)), 2.0);
  // Symmetric.
  EXPECT_EQ(ulp_distance(1.0, 1.5), ulp_distance(1.5, 1.0));
  // Straddling zero still counts monotonically.
  EXPECT_GT(ulp_distance(-1.0, 1.0), ulp_distance(0.5, 1.0));
}

TEST(UlpDistance, NonFiniteHandling) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ulp_distance(nan, nan), 0.0);  // both invalid: agreeing garbage
  EXPECT_TRUE(std::isinf(ulp_distance(nan, 1.0)));
  EXPECT_TRUE(std::isinf(ulp_distance(1.0, nan)));
  EXPECT_EQ(ulp_distance(inf, inf), 0.0);
  EXPECT_TRUE(std::isinf(ulp_distance(inf, -inf)));
}

TEST(Verify, DefaultDomainsCoverEdgePlacements) {
  const auto domains = default_domains();
  ASSERT_GE(domains.size(), 5u);
  bool has_interior_placement = false;  // region statements resolve empty
  bool has_degenerate = false;          // single-column
  bool has_offset_corner = false;       // high-corner tile placement
  for (const auto& d : domains) {
    if (d.gi0 > 0 && d.gj0 > 0 && d.gi0 + d.ni < d.global_ni()) has_interior_placement = true;
    if (d.ni == 1 && d.nj == 1) has_degenerate = true;
    if (d.gi0 > 0 && d.gni > 0 && d.gi0 + d.ni == d.gni) has_offset_corner = true;
  }
  EXPECT_TRUE(has_interior_placement);
  EXPECT_TRUE(has_degenerate);
  EXPECT_TRUE(has_offset_corner);
}

TEST(Verify, IdenticalProgramsAreBitEquivalent) {
  for (uint64_t i = 0; i < 5; ++i) {
    const uint64_t seed = Rng::mix(kFuzzBase, i);
    const ir::Program p = random_program(seed);
    const EquivalenceReport report = check_equivalent(p, p);
    EXPECT_TRUE(report.equivalent) << "seed=" << seed << " " << report.first_failure();
    EXPECT_EQ(report.worst_ulps(), 0.0) << "seed=" << seed;
  }
}

TEST(Verify, RandomProgramIsDeterministicInSeed) {
  const uint64_t seed = Rng::mix(kFuzzBase, 77);
  EXPECT_EQ(ir::to_json(random_program(seed)), ir::to_json(random_program(seed)));
  EXPECT_NE(ir::to_json(random_program(seed)), ir::to_json(random_program(seed + 1)));
}

TEST(Verify, RandomProgramsLintClean) {
  for (uint64_t i = 0; i < 50; ++i) {
    const uint64_t seed = Rng::mix(kFuzzBase, 1000 + i);
    const ir::Program p = random_program(seed);
    for (const auto& issue : ir::lint(p)) {
      EXPECT_NE(issue.severity, ir::LintIssue::Severity::Error)
          << "seed=" << seed << " " << issue.where << ": " << issue.message;
    }
  }
}

TEST(Verify, BackendsAgreeOnFuzzedPrograms) {
  for (uint64_t i = 0; i < 25; ++i) {
    const uint64_t seed = Rng::mix(kFuzzBase, 2000 + i);
    const ir::Program p = random_program(seed);
    const EquivalenceReport report = check_backends_agree(p);
    EXPECT_TRUE(report.equivalent) << "seed=" << seed << " " << report.first_failure();
  }
}

// The checker must catch deliberately miscompiled programs (mutation
// testing). Not every syntactic mutation is semantically observable (e.g. an
// offset shift of a constant expression), so we require a high catch rate
// plus one pinned always-observable case rather than 100%.
TEST(Verify, MutationsAreCaught) {
  int attempted = 0;
  int caught = 0;
  for (uint64_t i = 0; i < 40; ++i) {
    const uint64_t seed = Rng::mix(kFuzzBase, 3000 + i);
    const ir::Program original = random_program(seed);
    ir::Program mutant = original;
    const std::string defect = mutate_program(mutant, seed);
    if (defect.empty()) continue;
    ++attempted;
    if (!check_equivalent(original, mutant).equivalent) ++caught;
  }
  ASSERT_GE(attempted, 30);
  EXPECT_GE(caught * 10, attempted * 9)
      << "caught only " << caught << "/" << attempted << " injected defects";
}

TEST(Verify, ConstantBiasMutationIsAlwaysCaught) {
  // mutate_program's first case adds +1e-3 to an externally visible
  // statement: far above tolerance, observable on every sweep domain.
  const ir::Program original = random_program(Rng::mix(kFuzzBase, 4000));
  ir::Program mutant = original;
  const std::string defect = mutate_program(mutant, /*seed=*/0);  // case 0: bias
  ASSERT_FALSE(defect.empty());
  const EquivalenceReport report = check_equivalent(original, mutant);
  EXPECT_FALSE(report.equivalent) << defect;
  EXPECT_FALSE(report.first_failure().empty());
}

// The acceptance-criteria sweep: every transformation pass in the repo,
// translation-validated on >= 200 fuzzed programs with a fixed seed.
TEST(Verify, TranslationValidatesAllPassesOn200FuzzedPrograms) {
  const auto passes = known_passes();
  const exec::LaunchDomain pass_dom = default_domains().front();
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t seed = Rng::mix(kFuzzBase, 5000 + i);
    const ir::Program original = random_program(seed);
    for (const auto& pass : passes) {
      ir::Program transformed = original;
      const PassResult r = apply_pass(transformed, pass, pass_dom);
      ASSERT_TRUE(r.known) << pass;
      VerifyOptions vo;
      if (r.placement_dependent) vo.domains = {pass_dom};  // e.g. prune_regions
      const EquivalenceReport report = check_equivalent(original, transformed, vo);
      EXPECT_TRUE(report.equivalent)
          << "pass=" << pass << " seed=" << seed << " " << report.first_failure();
      if (!report.equivalent) return;  // one reproducer is enough to debug
    }
  }
}

TEST(Verify, ReportJsonIsWellFormed) {
  const ir::Program p = random_program(Rng::mix(kFuzzBase, 6000));
  ir::Program mutant = p;
  mutate_program(mutant, 1);
  const std::string json = report_to_json(check_equivalent(p, mutant));
  EXPECT_NE(json.find("\"equivalent\""), std::string::npos);
  EXPECT_NE(json.find("\"data_seed\""), std::string::npos);
  EXPECT_NE(json.find("\"domains\""), std::string::npos);
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

/// Two-node pointwise producer/consumer chain (SGF-fusible), mirroring the
/// tuner tests so the guard sees a transfer that genuinely applies.
ir::Program pointwise_chain() {
  ir::Program p("chain");
  dsl::StencilBuilder b1("scale2");
  auto in = b1.field("in");
  auto mid = b1.field("mid");
  b1.parallel().full().assign(mid, dsl::E(in) * 2.0);
  dsl::StencilBuilder b2("add1");
  auto mid2 = b2.field("mid");
  auto out = b2.field("out");
  b2.parallel().full().assign(out, dsl::E(mid2) + 1.0);
  p.append_state(ir::State{"s0",
                           {ir::SNode::make_stencil("a", b1.build(), {}, sched::tuned_horizontal()),
                            ir::SNode::make_stencil("b", b2.build(), {},
                                                    sched::tuned_horizontal())}});
  p.set_field_meta("mid", ir::FieldMeta{ir::FieldKind::Center3D, true});
  return p;
}

tune::TuningOptions guard_opts() {
  tune::TuningOptions o;
  o.dom = exec::LaunchDomain{24, 20, 8};
  o.verify_transfers = true;
  return o;
}

TEST(TransferGuard, AcceptsEquivalentFusions) {
  const auto options = guard_opts();
  const auto patterns = tune::collect_patterns(
      tune::tune_cutouts(pointwise_chain(), options, tune::TransformKind::SubgraphFusion));
  ASSERT_FALSE(patterns.empty());
  ir::Program target = pointwise_chain();
  const tune::TransferReport report = tune::transfer(target, patterns, options);
  EXPECT_EQ(report.applied, 1);
  EXPECT_EQ(report.rejected_by_verify, 0);
  EXPECT_EQ(target.states()[0].nodes.size(), 1u);  // fusion accepted
}

TEST(TransferGuard, RejectsWhenCutoutFailsEquivalence) {
  // An impossible tolerance makes every candidate fail its differential
  // check, which must veto application even though the model says "faster".
  auto options = guard_opts();
  options.verify.max_ulps = -1.0;
  options.verify.abs_floor = -1.0;
  const auto patterns = tune::collect_patterns(
      tune::tune_cutouts(pointwise_chain(), options, tune::TransformKind::SubgraphFusion));
  ASSERT_FALSE(patterns.empty());
  ir::Program target = pointwise_chain();
  const tune::TransferReport report = tune::transfer(target, patterns, options);
  EXPECT_EQ(report.applied, 0);
  EXPECT_EQ(report.rejected_by_verify, 1);
  EXPECT_EQ(target.states()[0].nodes.size(), 2u);  // untouched
}

TEST(TransferGuard, GuardedFuzzTransfersStayEquivalent) {
  // End-to-end: guarded transfer tuning over fuzzed programs never changes
  // semantics, and the guard itself never fires on the legal fuser.
  auto options = guard_opts();
  for (uint64_t i = 0; i < 10; ++i) {
    const uint64_t seed = Rng::mix(kFuzzBase, 7000 + i);
    const ir::Program original = random_program(seed);
    for (const auto kind : {tune::TransformKind::SubgraphFusion, tune::TransformKind::OtfFusion}) {
      const auto patterns =
          tune::collect_patterns(tune::tune_cutouts(original, options, kind));
      if (patterns.empty()) continue;
      ir::Program target = original;
      const tune::TransferReport report =
          tune::transfer_until_converged(target, patterns, options);
      EXPECT_EQ(report.rejected_by_verify, 0) << "seed=" << seed;
      const EquivalenceReport eq = check_equivalent(original, target);
      EXPECT_TRUE(eq.equivalent) << "seed=" << seed << " " << eq.first_failure();
    }
  }
}

fv3::ModelState small_state() {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.ntracers = 2;
  grid::Partitioner part(cfg.npx, 1, 1);
  return fv3::ModelState(cfg, part, 0);
}

TEST(OrchestrateGuard, VerifiesOrchestrationOnDycore) {
  const fv3::ModelState state = small_state();
  ir::Program prog = fv3::build_dycore_program(state);
  orch::OrchestrateOptions options;
  options.verify_equivalence = true;
  options.verify.domains = {state.domain()};  // fields sized for this tile
  const orch::OrchestrationReport report = orch::orchestrate(prog, options);
  EXPECT_TRUE(report.verified) << report.verify_failure;
  EXPECT_GT(report.stencils_processed, 20);
  // Orchestration was kept: bindings are gone from every node.
  for (const auto& st : prog.states()) {
    for (const auto& node : st.nodes) {
      if (node.kind == ir::SNode::Kind::Stencil) {
        EXPECT_TRUE(node.args.bind.empty());
      }
    }
  }
}

TEST(OrchestrateGuard, RollsBackWhenCheckFails) {
  const fv3::ModelState state = small_state();
  ir::Program prog = fv3::build_dycore_program(state);
  const std::string before = ir::to_json(prog);
  orch::OrchestrateOptions options;
  options.verify_equivalence = true;
  options.verify.domains = {state.domain()};
  options.verify.max_ulps = -1.0;  // impossible tolerance: force rejection
  options.verify.abs_floor = -1.0;
  const orch::OrchestrationReport report = orch::orchestrate(prog, options);
  EXPECT_FALSE(report.verified);
  EXPECT_FALSE(report.verify_failure.empty());
  EXPECT_EQ(ir::to_json(prog), before);  // rolled back bit-for-bit
}

}  // namespace
}  // namespace cyclone::verify
