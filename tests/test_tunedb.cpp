// Robustness of the persistent tuning database (core/tune/tunedb.*): the
// CorpusError discipline applied to tuning state. Truncation, bit flips,
// version skew, and concurrent writers must surface as structured errors,
// dropped records, or clean rebuilds — never as a wrong schedule handed to
// the executor.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/tune/tunedb.hpp"

namespace cyclone::tune {
namespace {

namespace fs = std::filesystem;

std::string fresh_db(const std::string& name) {
  fs::create_directories(CYCLONE_TEST_TMPDIR);
  const std::string path = std::string(CYCLONE_TEST_TMPDIR) + "/tunedb-" + name + ".db";
  fs::remove(path);
  return path;
}

TuneContext ctx_a() { return TuneContext{"p100-feedface", "openmp", 4}; }

Pattern sgf_pattern(const std::string& producer, const std::string& consumer,
                    double speedup = 1.5) {
  Pattern p;
  p.kind = TransformKind::SubgraphFusion;
  p.producer = producer;
  p.consumer = consumer;
  p.cutout_speedup = speedup;
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::trunc);
  os << text;
}

/// The record checksum (same FNV-1a the implementation uses), so tests can
/// craft lines that *pass* the checksum but fail semantic validation.
std::string checksummed(const std::string& payload) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : payload) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[18];
  std::snprintf(buf, sizeof buf, "%016llx ", static_cast<unsigned long long>(h));
  return buf + payload;
}

TEST(TuneDb, RoundTripsPatternsSchedulesAndMarkers) {
  const std::string path = fresh_db("roundtrip");
  {
    TuneDb db(path);
    db.put_pattern(ctx_a(), sgf_pattern("fvtp2d", "delnflux", 1.75));
    sched::Schedule s = sched::tuned_horizontal();
    s.tile_i = 8;
    s.tile_j = 8;
    db.put_schedule(ctx_a(), "fvtp2d", dsl::IterOrder::Parallel, s, 1.25e-3);
    db.mark_program(ctx_a(), "cafe0123feedbeef");
    db.flush();
  }
  TuneDb db(path);
  EXPECT_EQ(db.stats().loaded_records, 3);
  EXPECT_EQ(db.stats().poisoned_records, 0);
  const auto pats = db.patterns(ctx_a());
  ASSERT_EQ(pats.size(), 1u);
  EXPECT_EQ(pats[0].producer, "fvtp2d");
  EXPECT_DOUBLE_EQ(pats[0].cutout_speedup, 1.75);  // bit-pattern round trip
  const auto s = db.schedule(ctx_a(), "fvtp2d", dsl::IterOrder::Parallel);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->tile_i, 8);
  EXPECT_TRUE(db.has_program(ctx_a(), "cafe0123feedbeef"));
  // Different context: nothing leaks across the (machine, backend, threads) key.
  EXPECT_TRUE(db.patterns(TuneContext{"a100-0", "jit", 1}).empty());
  EXPECT_FALSE(db.has_program(TuneContext{"a100-0", "jit", 1}, "cafe0123feedbeef"));
}

TEST(TuneDb, TruncatedTailDropsOnlyTheTornRecord) {
  const std::string path = fresh_db("truncate");
  {
    TuneDb db(path);
    db.put_pattern(ctx_a(), sgf_pattern("a", "b"));
    db.put_pattern(ctx_a(), sgf_pattern("c", "d"));
    db.flush();
  }
  // Tear the file mid-way through the last line, as an interrupted write
  // (without the tmp+rename discipline) would.
  std::string text = read_file(path);
  ASSERT_GT(text.size(), 20u);
  write_file(path, text.substr(0, text.size() - 10));

  TuneDb db(path);
  EXPECT_EQ(db.stats().poisoned_records, 1);
  EXPECT_EQ(db.stats().rebuilds, 0);
  EXPECT_EQ(db.patterns(ctx_a()).size(), 1u);  // the intact record survives
}

TEST(TuneDb, BitFlipDropsExactlyTheCorruptRecord) {
  const std::string path = fresh_db("bitflip");
  {
    TuneDb db(path);
    db.put_pattern(ctx_a(), sgf_pattern("a", "b"));
    db.put_pattern(ctx_a(), sgf_pattern("c", "d"));
    db.flush();
  }
  std::string text = read_file(path);
  // Flip one byte inside the *last* record's payload (past its checksum).
  text[text.size() - 2] ^= 0x04;
  write_file(path, text);

  TuneDb db(path);
  EXPECT_EQ(db.stats().poisoned_records, 1);
  const auto pats = db.patterns(ctx_a());
  ASSERT_EQ(pats.size(), 1u);
  EXPECT_EQ(pats[0].producer, "a");
  EXPECT_EQ(TuneDb::validate(path), 1);  // validate() counts the same drop
}

TEST(TuneDb, VersionSkewRebuildsCleanAndValidateNamesIt) {
  const std::string path = fresh_db("version");
  {
    TuneDb db(path);
    db.put_pattern(ctx_a(), sgf_pattern("a", "b"));
    db.flush();
  }
  std::string text = read_file(path);
  const auto nl = text.find('\n');
  write_file(path, "cyclone-tunedb 999" + text.substr(nl));

  // validate() surfaces the structured error with file and reason attached.
  try {
    TuneDb::validate(path);
    FAIL() << "version skew must throw";
  } catch (const TuneDbError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_NE(e.reason().find("version skew"), std::string::npos) << e.reason();
  }

  // The constructor chooses rebuild: empty DB, file discarded, counted.
  TuneDb db(path);
  EXPECT_EQ(db.stats().rebuilds, 1);
  EXPECT_TRUE(db.patterns(ctx_a()).empty());
  EXPECT_FALSE(fs::exists(path));
}

TEST(TuneDb, BadMagicAndMissingFileAreStructuredErrors) {
  const std::string path = fresh_db("magic");
  EXPECT_THROW(TuneDb::validate(path), TuneDbError);  // missing file
  write_file(path, "not-a-tunedb 1\n");
  try {
    TuneDb::validate(path);
    FAIL() << "bad magic must throw";
  } catch (const TuneDbError& e) {
    EXPECT_NE(e.reason().find("bad magic"), std::string::npos) << e.reason();
  }
  TuneDb db(path);  // and the constructor rebuilds instead of trusting it
  EXPECT_EQ(db.stats().rebuilds, 1);
}

TEST(TuneDb, ChecksummedButInfeasibleScheduleIsRefused) {
  // A record can pass its checksum and still encode a schedule the validator
  // rejects (here: k-as-map on a Forward solver). The executor must never
  // see it — the loader drops it like corruption.
  const std::string path = fresh_db("infeasible");
  const std::string ctx = "m b 2";
  write_file(path, std::string("cyclone-tunedb 1\n") +
                       checksummed("S " + ctx + " tridiag 1 0 0 0 1 0 0 0 0 " +
                                   "3ff0000000000000") +
                       "\n");
  EXPECT_EQ(TuneDb::validate(path), 1);
  TuneDb db(path);
  EXPECT_EQ(db.stats().poisoned_records, 1);
  EXPECT_FALSE(db.schedule(TuneContext{"m", "b", 2}, "tridiag", dsl::IterOrder::Forward)
                   .has_value());
}

TEST(TuneDb, PutScheduleKeepsBestKnownConfig) {
  // The upsert keeps the smallest modeled time: a later, worse measurement
  // must not evict the best-known config.
  const std::string path = fresh_db("upsert");
  TuneDb db(path);
  sched::Schedule good = sched::tuned_horizontal();
  db.put_schedule(ctx_a(), "f", dsl::IterOrder::Parallel, good, 2.0);
  // Worse modeled time: the recorded config must not change.
  sched::Schedule other = sched::default_schedule();
  db.put_schedule(ctx_a(), "f", dsl::IterOrder::Parallel, other, 3.0);
  const auto s = db.schedule(ctx_a(), "f", dsl::IterOrder::Parallel);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(*s == good);
}

TEST(TuneDb, ConcurrentWritersMergeThroughFlush) {
  // Two live handles on the same path — the in-process stand-in for two
  // processes tuning into one DB. Each flush re-reads and merges the disk
  // state, so the second writer absorbs the first instead of clobbering it.
  const std::string path = fresh_db("concurrent");
  TuneDb a(path);
  TuneDb b(path);
  a.put_pattern(ctx_a(), sgf_pattern("pa", "ca", 1.2));
  b.put_pattern(ctx_a(), sgf_pattern("pb", "cb", 1.4));
  a.mark_program(ctx_a(), "siga");
  b.mark_program(ctx_a(), "sigb");
  a.flush();
  b.flush();  // merges a's records in before writing
  EXPECT_GE(b.stats().merged_records, 2L);

  TuneDb merged(path);
  EXPECT_EQ(merged.patterns(ctx_a()).size(), 2u);
  EXPECT_TRUE(merged.has_program(ctx_a(), "siga"));
  EXPECT_TRUE(merged.has_program(ctx_a(), "sigb"));
}

TEST(TuneDb, ConcurrentUpsertKeepsBestOfBothWriters) {
  // Both writers tune the same (context, function): the merge must keep the
  // better modeled time regardless of flush order.
  const std::string path = fresh_db("upsert-race");
  TuneDb a(path);
  TuneDb b(path);
  sched::Schedule sa = sched::tuned_horizontal();
  sa.tile_i = 8;
  sched::Schedule sb = sched::tuned_horizontal();
  sb.tile_i = 16;
  a.put_schedule(ctx_a(), "f", dsl::IterOrder::Parallel, sa, 2.0);
  b.put_schedule(ctx_a(), "f", dsl::IterOrder::Parallel, sb, 1.0);  // better
  a.flush();
  b.flush();

  TuneDb merged(path);
  const auto s = merged.schedule(ctx_a(), "f", dsl::IterOrder::Parallel);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->tile_i, 16);

  // And in the opposite order the better record still wins: a re-flush of
  // the worse writer must not clobber the better on-disk entry.
  TuneDb c(path);
  sched::Schedule sc = sched::tuned_horizontal();
  sc.tile_i = 4;
  c.put_schedule(ctx_a(), "g", dsl::IterOrder::Parallel, sc, 5.0);
  c.flush();
  TuneDb after(path);
  EXPECT_EQ(after.schedule(ctx_a(), "f", dsl::IterOrder::Parallel)->tile_i, 16);
  EXPECT_EQ(after.schedule(ctx_a(), "g", dsl::IterOrder::Parallel)->tile_i, 4);
}

TEST(TuneDb, FlushIntoUnwritableDirectoryThrowsStructured) {
  TuneDb db("/proc/cyclone-tunedb-nonexistent/tune.db");
  db.put_pattern(ctx_a(), sgf_pattern("a", "b"));
  EXPECT_THROW(db.flush(), TuneDbError);
}

}  // namespace
}  // namespace cyclone::tune
