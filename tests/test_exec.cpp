#include <gtest/gtest.h>

#include <cmath>

#include "core/dsl/builder.hpp"
#include "core/exec/interpreter.hpp"
#include "core/exec/tape.hpp"
#include "core/util/rng.hpp"

namespace cyclone::exec {
namespace {

using dsl::E;
using dsl::FieldVar;
using dsl::StencilBuilder;

/// Fill a field with reproducible pseudo-random values (halo included).
void randomize(FieldD& f, uint64_t seed) {
  Rng rng(seed);
  f.fill_with([&](int, int, int) { return rng.uniform(0.1, 2.0); });
}

dsl::StencilFunc laplacian() {
  StencilBuilder b("lap");
  auto in = b.field("in");
  auto out = b.field("out");
  b.parallel().full().assign(out,
                             in(-1, 0) + in(1, 0) + in(0, -1) + in(0, 1) - 4.0 * E(in));
  return b.build();
}

TEST(RefExecutor, LaplacianValues) {
  FieldCatalog cat;
  auto& in = cat.create("in", 4, 4, 2, HaloSpec{1, 1});
  cat.create("out", 4, 4, 2, HaloSpec{1, 1});
  in.fill_with([](int i, int j, int k) { return i * i + j * j + 10.0 * k; });

  RefExecutor exec(laplacian());
  exec.run(cat, LaunchDomain{4, 4, 2});

  // Laplacian of i^2 + j^2 is exactly 4 on this discrete stencil.
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(cat.at("out")(i, j, k), 4.0);
}

TEST(RefExecutor, ParamBinding) {
  StencilBuilder b("scale");
  auto q = b.field("q");
  auto f = b.param("factor");
  b.parallel().full().assign(q, E(q) * E(f));

  FieldCatalog cat;
  cat.create("q", 3, 3, 1).fill(2.0);
  StencilArgs args;
  args.params["factor"] = 2.5;
  RefExecutor exec(b.build());
  exec.run(cat, args, LaunchDomain{3, 3, 1});
  EXPECT_DOUBLE_EQ(cat.at("q")(1, 1, 0), 5.0);
}

TEST(RefExecutor, MissingParamThrows) {
  StencilBuilder b("scale");
  auto q = b.field("q");
  auto f = b.param("factor");
  b.parallel().full().assign(q, E(q) * E(f));
  FieldCatalog cat;
  cat.create("q", 3, 3, 1);
  RefExecutor exec(b.build());
  EXPECT_THROW(exec.run(cat, LaunchDomain{3, 3, 1}), Error);
}

TEST(RefExecutor, FieldRenamingViaBind) {
  StencilBuilder b("copy");
  auto src = b.field("src");
  auto dst = b.field("dst");
  b.parallel().full().assign(dst, E(src));

  FieldCatalog cat;
  cat.create("model_u", 3, 3, 1).fill(7.0);
  cat.create("scratch", 3, 3, 1);
  StencilArgs args;
  args.bind["src"] = "model_u";
  args.bind["dst"] = "scratch";
  RefExecutor(b.build()).run(cat, args, LaunchDomain{3, 3, 1});
  EXPECT_DOUBLE_EQ(cat.at("scratch")(2, 2, 0), 7.0);
}

TEST(RefExecutor, HaloTooSmallThrows) {
  FieldCatalog cat;
  cat.create("in", 4, 4, 1, HaloSpec{0, 0});
  cat.create("out", 4, 4, 1, HaloSpec{0, 0});
  RefExecutor exec(laplacian());
  EXPECT_THROW(exec.run(cat, LaunchDomain{4, 4, 1}), Error);
}

TEST(RefExecutor, SelfReadUsesPreAssignmentValues) {
  // q = q[i+1] over the plane must shift values left by one everywhere, not
  // cascade (value semantics even though execution sweeps i ascending).
  StencilBuilder b("shift");
  auto q = b.field("q");
  b.parallel().full().assign(q, q(1, 0));

  FieldCatalog cat;
  auto& q_f = cat.create("q", 4, 1, 1, HaloSpec{1, 0});
  q_f.fill_with([](int i, int, int) { return static_cast<double>(i); });
  RefExecutor(b.build()).run(cat, LaunchDomain{4, 1, 1});
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(q_f(i, 0, 0), i + 1.0);
}

TEST(RefExecutor, TemporaryChainWithExtents) {
  // tmp needs an extended compute domain so out's offset reads see values.
  StencilBuilder b("chain");
  auto in = b.field("in");
  auto out = b.field("out");
  auto tmp = b.temp("tmp");
  b.parallel()
      .full()
      .assign(tmp, in(-1, 0) + in(1, 0))
      .assign(out, tmp(-1, 0) + tmp(1, 0));

  FieldCatalog cat;
  auto& in_f = cat.create("in", 6, 3, 1, HaloSpec{2, 2});
  cat.create("out", 6, 3, 1, HaloSpec{2, 2});
  in_f.fill_with([](int i, int, int) { return static_cast<double>(i); });
  RefExecutor(b.build()).run(cat, LaunchDomain{6, 3, 1});
  // out = (in[i-2]+in[i]) + (in[i]+in[i+2]) = 4*i
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(cat.at("out")(i, 1, 0), 4.0 * i);
}

TEST(RefExecutor, ForwardSolverAccumulates) {
  // a[k] = a[k-1] + inc for k >= 1 builds a running sum down the column.
  StencilBuilder b("cumsum");
  auto a = b.field("a");
  auto inc = b.field("inc");
  b.forward().interval(dsl::inner_levels(1, 0)).assign(a, a.at_k(-1) + E(inc));

  FieldCatalog cat;
  auto& a_f = cat.create("a", 2, 2, 5);
  auto& inc_f = cat.create("inc", 2, 2, 5);
  a_f.fill(0.0);
  inc_f.fill(1.0);
  RefExecutor(b.build()).run(cat, LaunchDomain{2, 2, 5});
  for (int k = 0; k < 5; ++k) EXPECT_DOUBLE_EQ(a_f(0, 0, k), static_cast<double>(k));
}

TEST(RefExecutor, BackwardSolverAccumulates) {
  StencilBuilder b("back");
  auto a = b.field("a");
  b.backward().interval(dsl::inner_levels(0, 1)).assign(a, a.at_k(1) + 1.0);

  FieldCatalog cat;
  auto& a_f = cat.create("a", 2, 2, 5);
  a_f.fill(0.0);
  RefExecutor(b.build()).run(cat, LaunchDomain{2, 2, 5});
  for (int k = 0; k < 5; ++k) EXPECT_DOUBLE_EQ(a_f(0, 0, k), static_cast<double>(4 - k));
}

TEST(RefExecutor, MultipleIntervals) {
  StencilBuilder b("intervals");
  auto q = b.field("q");
  auto c = b.computation(dsl::IterOrder::Parallel);
  c.interval(dsl::first_levels(1)).assign(q, 10.0);
  c.interval(dsl::inner_levels(1, 1)).assign(q, 20.0);
  c.interval(dsl::last_levels(1)).assign(q, 30.0);

  FieldCatalog cat;
  cat.create("q", 2, 2, 4).fill(0.0);
  RefExecutor(b.build()).run(cat, LaunchDomain{2, 2, 4});
  EXPECT_DOUBLE_EQ(cat.at("q")(0, 0, 0), 10.0);
  EXPECT_DOUBLE_EQ(cat.at("q")(0, 0, 1), 20.0);
  EXPECT_DOUBLE_EQ(cat.at("q")(0, 0, 2), 20.0);
  EXPECT_DOUBLE_EQ(cat.at("q")(0, 0, 3), 30.0);
}

TEST(RefExecutor, RegionRestrictsWrites) {
  StencilBuilder b("edge");
  auto q = b.field("q");
  b.parallel().full().assign_in(dsl::region_j_start(1), q, 99.0);

  FieldCatalog cat;
  cat.create("q", 4, 4, 1).fill(0.0);
  RefExecutor(b.build()).run(cat, LaunchDomain{4, 4, 1});
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cat.at("q")(i, 0, 0), 99.0);
    EXPECT_DOUBLE_EQ(cat.at("q")(i, 1, 0), 0.0);
  }
}

TEST(RefExecutor, RegionUsesGlobalPlacement) {
  // The same stencil on a subdomain NOT containing the tile's j-start edge
  // must not write anything (paper Sec. IV-B: regions are global).
  StencilBuilder b("edge");
  auto q = b.field("q");
  b.parallel().full().assign_in(dsl::region_j_start(1), q, 99.0);

  FieldCatalog cat;
  cat.create("q", 4, 4, 1).fill(0.0);
  LaunchDomain dom{4, 4, 1};
  dom.gj0 = 4;  // this subdomain starts at global j=4
  dom.gni = 8;
  dom.gnj = 8;
  RefExecutor(b.build()).run(cat, dom);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(cat.at("q")(i, j, 0), 0.0);

  // ...and a subdomain containing the j-end edge applies a j_end region.
  StencilBuilder b2("edge2");
  auto q2 = b2.field("q");
  b2.parallel().full().assign_in(dsl::region_j_end(1), q2, 55.0);
  LaunchDomain dom2{4, 4, 1};
  dom2.gj0 = 4;
  dom2.gni = 8;
  dom2.gnj = 8;
  RefExecutor(b2.build()).run(cat, dom2);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(cat.at("q")(i, 3, 0), 55.0);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(cat.at("q")(i, 2, 0), 0.0);
}

TEST(RefExecutor, SequentialStatementsSeeUpdates) {
  StencilBuilder b("seq");
  auto a = b.field("a");
  auto c = b.field("c");
  b.parallel().full().assign(a, 3.0).assign(c, E(a) * 2.0);
  FieldCatalog cat;
  cat.create("a", 2, 2, 1).fill(0.0);
  cat.create("c", 2, 2, 1).fill(0.0);
  RefExecutor(b.build()).run(cat, LaunchDomain{2, 2, 1});
  EXPECT_DOUBLE_EQ(cat.at("c")(0, 0, 0), 6.0);
}

// --- Tape executor: must agree with the reference interpreter -------------

class TapeVsRef : public ::testing::TestWithParam<int> {};

dsl::StencilFunc random_ish_stencil(int variant) {
  StencilBuilder b("var" + std::to_string(variant));
  auto in = b.field("in");
  auto out = b.field("out");
  auto w = b.field("w");
  auto dt = b.param("dt");
  switch (variant) {
    case 0:
      b.parallel().full().assign(out, in(-1, 0) * 0.25 + in(1, 0) * 0.75 - E(dt));
      break;
    case 1: {
      auto tmp = b.temp("tmp");
      b.parallel()
          .full()
          .assign(tmp, dsl::max(E(in), E(w)) - dsl::min(E(in), E(w)))
          .assign(out, tmp(0, -1) + tmp(0, 1) * E(dt));
      break;
    }
    case 2:
      b.parallel().full().assign(out, dsl::select(E(in) > E(w), sqrt(dsl::abs(E(in))),
                                                  pow(E(w), 2.0)));
      break;
    case 3: {
      b.forward()
          .interval(dsl::first_levels(1))
          .assign(out, E(in));
      b.forward()
          .interval(dsl::inner_levels(1, 0))
          .assign(out, out.at_k(-1) * 0.5 + E(in) * E(dt));
      break;
    }
    case 4: {
      b.backward().interval(dsl::last_levels(1)).assign(out, E(w));
      b.backward()
          .interval(dsl::inner_levels(0, 1))
          .assign(out, out.at_k(1) * 0.9 + in(1, 1) * 0.1);
      break;
    }
    case 5:
      b.parallel().full().assign_in(dsl::region_i_start(2), out, E(in) * 5.0).assign(
          out, E(out) + exp(E(w) * 0.01));
      break;
    default:
      b.parallel().full().assign(out, log(E(in) + 1.5) + sin(E(w)) * cos(E(in)));
      break;
  }
  return b.build();
}

TEST_P(TapeVsRef, AgreesWithReference) {
  const auto stencil = random_ish_stencil(GetParam());

  auto make_cat = [](FieldCatalog& cat) {
    auto& in = cat.create("in", 7, 6, 5, HaloSpec{2, 2});
    auto& w = cat.create("w", 7, 6, 5, HaloSpec{2, 2});
    auto& out = cat.create("out", 7, 6, 5, HaloSpec{2, 2});
    randomize(in, 11);
    randomize(w, 22);
    randomize(out, 33);
  };

  FieldCatalog ref_cat, tape_cat;
  make_cat(ref_cat);
  make_cat(tape_cat);

  StencilArgs args;
  args.params["dt"] = 0.125;
  const LaunchDomain dom{7, 6, 5};

  RefExecutor(stencil).run(ref_cat, args, dom);
  CompiledStencil(stencil).run(tape_cat, args, dom);

  EXPECT_EQ(FieldD::max_abs_diff(ref_cat.at("out"), tape_cat.at("out")), 0.0)
      << "variant " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TapeVsRef, ::testing::Range(0, 7));

TEST(Tape, CompiledLaplacianMatchesClosedForm) {
  FieldCatalog cat;
  auto& in = cat.create("in", 8, 8, 3, HaloSpec{1, 1});
  cat.create("out", 8, 8, 3, HaloSpec{1, 1});
  in.fill_with([](int i, int j, int k) { return i * i + j * j + 5.0 * k; });
  CompiledStencil cs(laplacian());
  cs.run(cat, LaunchDomain{8, 8, 3});
  for (int k = 0; k < 3; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(cat.at("out")(i, j, k), 4.0);
}

TEST(Tape, SlotAndParamInterning) {
  StencilBuilder b("s");
  auto in = b.field("in");
  auto out = b.field("out");
  auto dt = b.param("dt");
  b.parallel().full().assign(out, E(in) * E(dt) + E(in));
  CompiledStencil cs(b.build());
  EXPECT_EQ(cs.slot_names().size(), 2u);
  EXPECT_EQ(cs.param_names().size(), 1u);
}

TEST(Tape, RunIsRepeatable) {
  StencilBuilder b("inc");
  auto q = b.field("q");
  b.parallel().full().assign(q, E(q) + 1.0);
  CompiledStencil cs(b.build());
  FieldCatalog cat;
  cat.create("q", 3, 3, 2).fill(0.0);
  for (int rep = 0; rep < 5; ++rep) cs.run(cat, LaunchDomain{3, 3, 2});
  EXPECT_DOUBLE_EQ(cat.at("q")(1, 1, 1), 5.0);
}

TEST(Tape, DifferentLayoutsSameResult) {
  for (auto layout : {Layout::KJI, Layout::IJK, Layout::KIJ, Layout::JKI}) {
    FieldCatalog cat;
    auto& in = cat.create("in", FieldShape(5, 5, 4, HaloSpec{1, 1}, layout));
    cat.create("out", FieldShape(5, 5, 4, HaloSpec{1, 1}, layout));
    randomize(in, 77);
    CompiledStencil(laplacian()).run(cat, LaunchDomain{5, 5, 4});

    FieldCatalog ref;
    auto& rin = ref.create("in", 5, 5, 4, HaloSpec{1, 1});
    ref.create("out", 5, 5, 4, HaloSpec{1, 1});
    randomize(rin, 77);
    RefExecutor(laplacian()).run(ref, LaunchDomain{5, 5, 4});

    EXPECT_EQ(FieldD::max_abs_diff(cat.at("out"), ref.at("out")), 0.0)
        << layout_name(layout);
  }
}

}  // namespace
}  // namespace cyclone::exec
