#include <gtest/gtest.h>

#include <cmath>

#include "core/exec/tape.hpp"
#include "core/util/rng.hpp"
#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"
#include "fv3/stencils/c_sw.hpp"
#include "fv3/stencils/d_sw.hpp"
#include "fv3/stencils/fv_tp2d.hpp"
#include "fv3/stencils/pressure.hpp"
#include "fv3/stencils/remap.hpp"
#include "fv3/stencils/riem_solver.hpp"
#include "fv3/stencils/update_dz.hpp"

namespace cyclone::fv3 {
namespace {

FvConfig small_config() {
  FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.k_split = 1;
  cfg.n_split = 2;
  cfg.ntracers = 2;
  cfg.dt = 300.0;
  return cfg;
}

// ---- fv_tp_2d --------------------------------------------------------------

struct TransportSetup {
  FieldCatalog cat;
  exec::LaunchDomain dom{16, 16, 4};

  explicit TransportSetup(double courant, uint64_t seed = 0) {
    cat.create("q", 16, 16, 4);
    cat.create("crx", 16, 16, 4);
    cat.create("cry", 16, 16, 4);
    cat.create("fx", 16, 16, 4);
    cat.create("fy", 16, 16, 4);
    cat.at("crx").fill(courant);
    cat.at("cry").fill(courant);
    if (seed) {
      Rng rng(seed);
      cat.at("q").fill_with([&](int, int, int) { return rng.uniform(0.0, 2.0); });
    }
  }

  void run() {
    // Fluxes are computed on the face-extended domain (as fv_tp2d_node sets
    // ext_i/ext_j = 1), the update on the cell domain.
    exec::LaunchDomain flux_dom = dom;
    flux_dom.ni += 1;
    flux_dom.nj += 1;
    flux_dom.gni = dom.ni;
    flux_dom.gnj = dom.nj;
    exec::CompiledStencil cs(build_fv_tp2d());
    cs.run(cat, flux_dom);
    exec::CompiledStencil upd(build_flux_update());
    upd.run(cat, dom);
  }
};

TEST(FvTp2d, ConstantFieldIsInvariant) {
  TransportSetup s(0.3);
  s.cat.at("q").fill(5.0);
  s.run();
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 16; ++i) EXPECT_NEAR(s.cat.at("q")(i, j, 2), 5.0, 1e-12);
}

TEST(FvTp2d, ZeroWindMovesNothing) {
  TransportSetup s(0.0, /*seed=*/42);
  FieldD before("before", 16, 16, 4);
  before.copy_from(s.cat.at("q"));
  s.run();
  EXPECT_EQ(FieldD::max_abs_diff(before, s.cat.at("q")), 0.0);
}

TEST(FvTp2d, MassConservedPeriodicInterior) {
  // Total q over the interior changes only by boundary fluxes; compare the
  // interior sum change against the accumulated boundary fluxes.
  TransportSetup s(0.25, /*seed=*/7);
  double before = 0;
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) before += s.cat.at("q")(i, j, k);
  s.run();
  double after = 0, boundary = 0;
  for (int k = 0; k < 4; ++k) {
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) after += s.cat.at("q")(i, j, k);
    for (int j = 0; j < 16; ++j) {
      boundary += s.cat.at("fx")(0, j, k) - s.cat.at("fx")(16, j, k);
    }
    for (int i = 0; i < 16; ++i) {
      boundary += s.cat.at("fy")(i, 0, k) - s.cat.at("fy")(i, 16, k);
    }
  }
  EXPECT_NEAR(after - before, boundary, 1e-9 * std::abs(before));
}

TEST(FvTp2d, MonotoneNoNewExtrema) {
  // Advection of a 0/1 step must stay within [min, max] (monotonicity of the
  // limited scheme).
  TransportSetup s(0.4);
  s.cat.at("q").fill_with([](int i, int, int) { return i < 8 ? 0.0 : 1.0; });
  for (int rep = 0; rep < 3; ++rep) s.run();
  for (int k = 0; k < 4; ++k)
    for (int j = 2; j < 14; ++j)
      for (int i = 2; i < 14; ++i) {
        EXPECT_GE(s.cat.at("q")(i, j, k), -1e-12);
        EXPECT_LE(s.cat.at("q")(i, j, k), 1.0 + 1e-12);
      }
}

TEST(FvTp2d, UpwindDirectionRespected) {
  // A blob with positive wind must move toward +i, never upstream.
  TransportSetup s(0.5);
  s.cat.at("cry").fill(0.0);
  s.cat.at("q").fill(0.0);
  for (int k = 0; k < 4; ++k) s.cat.at("q")(4, 8, k) = 1.0;
  s.run();
  EXPECT_GT(s.cat.at("q")(5, 8, 1), 0.0);
  EXPECT_NEAR(s.cat.at("q")(3, 8, 1), 0.0, 1e-12);
}

// ---- Riemann solver --------------------------------------------------------

struct RiemannSetup {
  FieldCatalog cat;
  exec::LaunchDomain dom{6, 6, 12};
  FvConfig cfg;
  double dt = 10.0;

  RiemannSetup() {
    cfg = small_config();
    cfg.npz = 12;
    for (const char* name : {"delz", "w", "delp", "aa", "bb", "cc", "rhs", "gam", "pp"}) {
      cat.create(name, 6, 6, 12);
    }
    cat.at("delp").fill(1.2e4);
    Rng rng(3);
    cat.at("delz").fill_with([&](int, int, int) { return rng.uniform(200.0, 600.0); });
    cat.at("w").fill_with([&](int, int, int) { return rng.uniform(-2.0, 2.0); });
  }

  void run() {
    exec::StencilArgs pre;
    pre.params["dt"] = dt;
    pre.params["cs2"] = grid::kRdGas * cfg.t_mean;
    exec::CompiledStencil(build_riem_precompute(cfg)).run(cat, pre, dom);
    exec::CompiledStencil(build_riem_forward(cfg)).run(cat, {}, dom);
    exec::StencilArgs back;
    back.params["dt"] = dt;
    exec::CompiledStencil(build_riem_backward(cfg)).run(cat, back, dom);
  }
};

TEST(RiemannSolver, SatisfiesTridiagonalSystem) {
  RiemannSetup s;
  // Snapshot coefficients after precompute but before the solve mutates gam.
  exec::StencilArgs pre;
  pre.params["dt"] = s.dt;
  pre.params["cs2"] = grid::kRdGas * s.cfg.t_mean;
  exec::CompiledStencil(build_riem_precompute(s.cfg)).run(s.cat, pre, s.dom);
  FieldD aa("aa0", 6, 6, 12), bb("bb0", 6, 6, 12), cc("cc0", 6, 6, 12), rhs("rhs0", 6, 6, 12);
  aa.copy_from(s.cat.at("aa"));
  bb.copy_from(s.cat.at("bb"));
  cc.copy_from(s.cat.at("cc"));
  rhs.copy_from(s.cat.at("rhs"));
  FieldD w0("w0", 6, 6, 12);
  w0.copy_from(s.cat.at("w"));

  s.run();

  const FieldD& pp = s.cat.at("pp");
  for (int j = 0; j < 6; ++j) {
    for (int i = 0; i < 6; ++i) {
      for (int k = 0; k < 12; ++k) {
        const double up = k > 0 ? pp(i, j, k - 1) : 0.0;
        const double dn = k < 11 ? pp(i, j, k + 1) : 0.0;
        const double lhs = -aa(i, j, k) * up + bb(i, j, k) * pp(i, j, k) - cc(i, j, k) * dn;
        EXPECT_NEAR(lhs, rhs(i, j, k), 1e-9 * (std::abs(rhs(i, j, k)) + 1.0))
            << "column (" << i << "," << j << ") level " << k;
      }
    }
  }
}

TEST(RiemannSolver, ZeroForcingGivesZeroSolution) {
  RiemannSetup s;
  s.cat.at("w").fill(0.0);
  s.run();
  for (int k = 0; k < 12; ++k) EXPECT_NEAR(s.cat.at("pp")(3, 3, k), 0.0, 1e-14);
}

TEST(RiemannSolver, DiagonallyDominantSystemIsStable) {
  RiemannSetup s;
  s.run();
  for (int k = 0; k < 12; ++k) {
    EXPECT_TRUE(std::isfinite(s.cat.at("pp")(2, 4, k)));
    EXPECT_TRUE(std::isfinite(s.cat.at("w")(2, 4, k)));
  }
}

// ---- c_sw regions ----------------------------------------------------------

TEST(CSw, EdgeRegionsDropCosaCorrection) {
  FieldCatalog cat;
  const int n = 8;
  for (const char* name : {"u", "v", "ut", "vt", "uc", "vc"}) cat.create(name, n, n, 2);
  for (const char* name : {"cosa", "sina"}) cat.create(name, n, n, 1);
  cat.at("u").fill(10.0);
  cat.at("v").fill(4.0);
  cat.at("cosa").fill(0.3);
  cat.at("sina").fill(std::sqrt(1 - 0.09));

  exec::CompiledStencil cs(build_c_sw_winds());
  cs.run(cat, exec::LaunchDomain{n, n, 2});  // whole tile: edges present

  const double corrected = (10.0 - 4.0 * 0.3) / std::sqrt(1 - 0.09);
  EXPECT_NEAR(cat.at("ut")(4, 4, 0), corrected, 1e-12);  // interior
  EXPECT_NEAR(cat.at("ut")(4, 0, 0), 10.0, 1e-12);       // j_start edge
  EXPECT_NEAR(cat.at("ut")(4, n - 1, 0), 10.0, 1e-12);   // j_end edge
  EXPECT_NEAR(cat.at("vt")(0, 4, 0), 4.0, 1e-12);        // i_start edge
}

// ---- pressure / gz ---------------------------------------------------------

TEST(Pressure, HydrostaticIntegralMatchesDelp) {
  FvConfig cfg = small_config();
  FieldCatalog cat;
  const int n = 4, nk = cfg.npz;
  cat.create("delp", n, n, nk);
  cat.create("pe", n, n, nk + 1);
  cat.create("pk", n, n, nk + 1);
  cat.create("peln", n, n, nk + 1);
  cat.create("ps", n, n, 1);
  Rng rng(9);
  cat.at("delp").fill_with([&](int, int, int) { return rng.uniform(100.0, 500.0); });

  exec::StencilArgs args;
  args.params["ptop"] = cfg.ptop;
  const exec::LaunchDomain dom{n, n, nk};
  exec::CompiledStencil(build_pe_update(cfg)).run(cat, args, dom);
  exec::CompiledStencil(build_pk_peln(cfg)).run(cat, {}, dom);

  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      double sum = cfg.ptop;
      EXPECT_NEAR(cat.at("pe")(i, j, 0), cfg.ptop, 1e-12);
      for (int k = 0; k < nk; ++k) {
        sum += cat.at("delp")(i, j, k);
        EXPECT_NEAR(cat.at("pe")(i, j, k + 1), sum, 1e-9);
      }
      EXPECT_NEAR(cat.at("ps")(i, j, 0), sum, 1e-9);
      EXPECT_NEAR(cat.at("pk")(i, j, nk), std::pow(sum, grid::kKappa), 1e-9);
      EXPECT_NEAR(cat.at("peln")(i, j, nk), std::log(sum), 1e-12);
    }
  }
}

TEST(Pressure, GzIntegratesDelzUpward) {
  FieldCatalog cat;
  const int n = 4, nk = 6;
  cat.create("gz", n, n, nk + 1);
  cat.create("delz", n, n, nk).fill(250.0);
  exec::CompiledStencil(build_gz_update()).run(cat, exec::LaunchDomain{n, n, nk});
  EXPECT_NEAR(cat.at("gz")(2, 2, nk), 0.0, 1e-12);
  EXPECT_NEAR(cat.at("gz")(2, 2, 0), 6 * 250.0 * grid::kGravity, 1e-9);
}

// ---- remap -----------------------------------------------------------------

TEST(Remap, ConservesColumnMassExactly) {
  FvConfig cfg = small_config();
  const int n = 4, nk = cfg.npz;
  grid::Partitioner part(cfg.npx, 1, 1);
  ModelState state(cfg, part, 0);
  init_baroclinic(state, part);

  // Deform delp slightly so the remap has work to do; keep pe consistent.
  Rng rng(17);
  FieldD& delp = state.f("delp");
  FieldD& q0 = state.f("q0");
  for (int j = 0; j < state.domain().nj; ++j)
    for (int i = 0; i < state.domain().ni; ++i) {
      double total = 0;
      for (int k = 0; k < nk; ++k) total += delp(i, j, k);
      // Random positive re-partition of the same column mass.
      std::vector<double> weights(nk);
      double wsum = 0;
      for (auto& w : weights) wsum += (w = rng.uniform(0.5, 1.5));
      for (int k = 0; k < nk; ++k) delp(i, j, k) = total * weights[k] / wsum;
    }
  (void)n;

  // Column tracer mass before.
  std::vector<double> mass_before;
  for (int j = 0; j < state.domain().nj; ++j)
    for (int i = 0; i < state.domain().ni; ++i) {
      double m = 0;
      for (int k = 0; k < nk; ++k) m += q0(i, j, k) * delp(i, j, k);
      mass_before.push_back(m);
    }

  ir::Program prog("remap_only");
  state.register_meta(prog);
  prog.append_state(ir::State{"remap", remap_nodes(cfg, sched::tuned_vertical())});
  prog.execute(state.catalog(), state.domain());

  size_t idx = 0;
  for (int j = 0; j < state.domain().nj; ++j)
    for (int i = 0; i < state.domain().ni; ++i) {
      double m = 0;
      for (int k = 0; k < nk; ++k) m += q0(i, j, k) * delp(i, j, k);
      EXPECT_NEAR(m, mass_before[idx], 1e-9 * std::abs(mass_before[idx]))
          << "column (" << i << "," << j << ")";
      ++idx;
    }
}

TEST(Remap, RestoresReferenceThickness) {
  FvConfig cfg = small_config();
  grid::Partitioner part(cfg.npx, 1, 1);
  ModelState state(cfg, part, 0);
  init_baroclinic(state, part);

  ir::Program prog("remap_only");
  state.register_meta(prog);
  prog.append_state(ir::State{"remap", remap_nodes(cfg, sched::tuned_vertical())});
  prog.execute(state.catalog(), state.domain());

  // After remapping, delp must equal the reference thickness.
  for (int k = 0; k < cfg.npz; ++k) {
    const double ref = state.f("ak")(2, 2, k + 1) + state.f("bk")(2, 2, k + 1) * cfg.p_surf -
                       (state.f("ak")(2, 2, k) + state.f("bk")(2, 2, k) * cfg.p_surf);
    EXPECT_NEAR(state.f("delp")(2, 2, k), ref, 1e-9 * ref);
  }
}

// ---- full dycore integration ----------------------------------------------

TEST(Dycore, ProgramHasExpectedStructure) {
  FvConfig cfg = small_config();
  grid::Partitioner part(cfg.npx, 1, 1);
  ModelState state(cfg, part, 0);
  const ir::Program prog = build_dycore_program(state);
  const ir::ProgramStats stats = prog.stats();
  EXPECT_GT(stats.states, 8);
  EXPECT_GT(stats.stencil_nodes, 20);
  EXPECT_GT(stats.stencil_ops, 80);
  EXPECT_GE(stats.halo_exchanges, 3);
  // The acoustic body repeats k_split * n_split times.
  EXPECT_EQ(stats.max_node_invocations, cfg.k_split * cfg.n_split);
}

TEST(Dycore, SixRankStepStaysFiniteAndConservesMass) {
  FvConfig cfg = small_config();
  DistributedModel model(cfg, 6);
  init_baroclinic(model);

  const GlobalDiagnostics before = model.diagnostics();
  ASSERT_TRUE(before.finite());
  EXPECT_GT(before.total_mass, 0.0);

  for (int step = 0; step < 2; ++step) model.step();

  const GlobalDiagnostics after = model.diagnostics();
  ASSERT_TRUE(after.finite());
  // Winds stay physical (no blow-up).
  EXPECT_LT(after.max_wind, 150.0);
  // Air mass conservation: transport + remap are flux-form; halo fluxes
  // match across ranks, so the global integral moves only by round-off and
  // the (mass-affecting) divergence damping — allow a small drift.
  EXPECT_NEAR(after.total_mass / before.total_mass, 1.0, 5e-3);
}

TEST(Dycore, PerturbationBreaksZonalSymmetry) {
  FvConfig cfg = small_config();
  DistributedModel model(cfg, 6);
  BaroclinicCase pert;
  pert.u_pert = 5.0;
  init_baroclinic(model, pert);
  model.step();
  // The perturbed flow must differ between two longitudes at the same
  // latitude circle (wave development).
  const FieldD& u = model.state(0).f("u");
  double max_dev = 0;
  for (int i = 0; i < model.state(0).domain().ni; ++i) {
    max_dev = std::max(max_dev, std::abs(u(i, 5, 3) - u(0, 5, 3)));
  }
  EXPECT_GT(max_dev, 1e-6);
}

TEST(Dycore, DeterministicAcrossRuns) {
  FvConfig cfg = small_config();
  auto run_once = [&] {
    DistributedModel model(cfg, 6);
    init_baroclinic(model);
    model.step();
    return model.diagnostics();
  };
  const GlobalDiagnostics a = run_once();
  const GlobalDiagnostics b = run_once();
  EXPECT_EQ(a.total_mass, b.total_mass);
  EXPECT_EQ(a.max_wind, b.max_wind);
  EXPECT_EQ(a.mean_pt, b.mean_pt);
}

TEST(Dycore, TwentyFourRanksMatchSixRanks) {
  // Domain decomposition must not change the physics: the same global grid
  // split 6 ways vs 24 ways gives the same global diagnostics (up to
  // round-off from summation order).
  FvConfig cfg = small_config();
  cfg.npx = 12;

  DistributedModel m6(cfg, 6);
  init_baroclinic(m6);
  m6.step();
  DistributedModel m24(cfg, 24);
  init_baroclinic(m24);
  m24.step();

  const GlobalDiagnostics d6 = m6.diagnostics();
  const GlobalDiagnostics d24 = m24.diagnostics();
  EXPECT_NEAR(d6.total_mass, d24.total_mass, 1e-6 * d6.total_mass);
  EXPECT_NEAR(d6.max_wind, d24.max_wind, 1e-6 * (d6.max_wind + 1));
  EXPECT_NEAR(d6.mean_pt, d24.mean_pt, 1e-6 * d6.mean_pt);
}

}  // namespace
}  // namespace cyclone::fv3

namespace cyclone::fv3 {
namespace {

TEST(Advection, SolidBodyTracerStaysBoundedAndConserved) {
  // Pure advection test: solid-body rotation carries a tracer blob across
  // tile edges; the monotone transport must keep it within [0, 1] and
  // conserve its global mass (flux-form with matching face fluxes).
  FvConfig cfg;
  cfg.npx = 16;
  cfg.npz = 4;
  cfg.k_split = 1;
  cfg.n_split = 1;
  cfg.ntracers = 1;
  cfg.dt = 1200.0;
  cfg.do_smagorinsky = false;
  cfg.divergence_damp = 0.0;
  cfg.do_riem_solver3 = false;

  DistributedModel model(cfg, 6);
  for (int r = 0; r < 6; ++r) init_solid_body(model.state(r), model.partitioner(), 30.0);
  model.exchange_prognostics();

  const GlobalDiagnostics before = model.diagnostics();
  for (int s = 0; s < 6; ++s) model.step();
  const GlobalDiagnostics after = model.diagnostics();

  ASSERT_TRUE(after.finite());
  // Tracer mass stays near-conserved (mass-weighted transport + exactly
  // telescoping remap; residual drift comes from the approximate
  // cube-corner halo fill).
  EXPECT_NEAR(after.tracer_mass_q0 / before.tracer_mass_q0, 1.0, 4e-2);
  // Boundedness: positivity is guaranteed (limiter + fillz); mild
  // overshoot (tens of percent at worst) is localized at cube corners,
  // where the transpose corner fill only approximates the true diagonal
  // neighbor — FV3 invests dedicated one-sided corner operators here.
  for (int r = 0; r < 6; ++r) {
    const FieldD& q = model.state(r).f("q0");
    const auto& dom = model.state(r).domain();
    for (int k = 0; k < dom.nk; ++k)
      for (int j = 0; j < dom.nj; ++j)
        for (int i = 0; i < dom.ni; ++i) {
          EXPECT_GE(q(i, j, k), -1e-9);
          EXPECT_LE(q(i, j, k), 1.35);
        }
  }
}

TEST(Advection, BlobActuallyMoves) {
  FvConfig cfg;
  cfg.npx = 16;
  cfg.npz = 4;
  cfg.k_split = 1;
  cfg.n_split = 1;
  cfg.ntracers = 1;
  cfg.dt = 1800.0;

  DistributedModel model(cfg, 6);
  for (int r = 0; r < 6; ++r) init_solid_body(model.state(r), model.partitioner(), 40.0);
  model.exchange_prognostics();

  // Locate the blob's center of mass (on tile 0, where it starts).
  auto center_i = [&] {
    const FieldD& q = model.state(0).f("q0");
    double wsum = 0, isum = 0;
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) {
        wsum += q(i, j, 0);
        isum += q(i, j, 0) * i;
      }
    return wsum > 0 ? isum / wsum : -1.0;
  };
  const double i_before = center_i();
  for (int s = 0; s < 4; ++s) model.step();
  const double i_after = center_i();
  // Eastward flow moves the blob toward +i on the equatorial tile.
  EXPECT_GT(i_after, i_before + 0.1);
}

TEST(Config, ValidationCatchesBadSetups) {
  FvConfig cfg;
  cfg.npz = 1;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = FvConfig{};
  cfg.k_split = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = FvConfig{};
  cfg.hydrostatic = true;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = FvConfig{};
  cfg.dt = -1;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = FvConfig{};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Dycore, LongerRunRemainsStable) {
  FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.k_split = 1;
  cfg.n_split = 2;
  cfg.ntracers = 2;
  cfg.dt = 300.0;
  DistributedModel model(cfg, 6);
  init_baroclinic(model);
  for (int s = 0; s < 8; ++s) model.step();
  const GlobalDiagnostics d = model.diagnostics();
  ASSERT_TRUE(d.finite());
  EXPECT_LT(d.max_wind, 200.0);
  EXPECT_GT(d.mean_pt, 150.0);
  EXPECT_LT(d.mean_pt, 350.0);
}

}  // namespace
}  // namespace cyclone::fv3
