#include <gtest/gtest.h>

#include <cmath>

#include "core/dsl/builder.hpp"
#include "core/exec/tape.hpp"
#include "fv3/stencils/functions.hpp"

namespace cyclone::fv3 {
namespace {

using dsl::E;
using dsl::StencilBuilder;

/// Evaluate a one-statement stencil built from a function expression.
double eval_fn(const std::function<E(StencilBuilder&)>& make, const FieldCatalog& inputs,
               int i = 2, int j = 2, int k = 0) {
  StencilBuilder b("probe");
  const E rhs = make(b);
  auto out = b.field("probe_out");
  b.parallel().full().assign(out, rhs);

  FieldCatalog cat;
  for (const auto& name : inputs.names()) {
    cat.create(name, inputs.at(name).shape()).copy_from(inputs.at(name));
  }
  cat.create("probe_out", 6, 6, 2, HaloSpec{2, 2});
  exec::CompiledStencil(b.build()).run(cat, exec::LaunchDomain{6, 6, 2});
  return cat.at("probe_out")(i, j, k);
}

FieldCatalog linear_inputs() {
  FieldCatalog cat;
  cat.create("f", 6, 6, 2, HaloSpec{2, 2}).fill_with([](int i, int j, int k) {
    return 3.0 * i - 2.0 * j + 0.5 * k;
  });
  cat.create("rdx", 6, 6, 1, HaloSpec{2, 2}).fill(0.25);
  cat.create("rdy", 6, 6, 1, HaloSpec{2, 2}).fill(0.5);
  return cat;
}

TEST(Functions, GradientsOfLinearFieldAreExact) {
  const FieldCatalog in = linear_inputs();
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) { return fn::grad_x(b.field("f"), b.field("rdx")); }, in),
                   3.0 * 0.25);
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) { return fn::grad_y(b.field("f"), b.field("rdy")); }, in),
                   -2.0 * 0.5);
}

TEST(Functions, LaplacianOfLinearFieldIsZero) {
  const FieldCatalog in = linear_inputs();
  EXPECT_NEAR(eval_fn([](StencilBuilder& b) {
                return fn::laplacian(b.field("f"), b.field("rdx"), b.field("rdy"));
              }, in),
              0.0, 1e-12);
}

TEST(Functions, FaceAverages) {
  const FieldCatalog in = linear_inputs();
  // avg_x at i=2 of f=3i-2j: (f(1)+f(2))/2 = 3*1.5 - 2j.
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) { return fn::avg_x(b.field("f")); }, in),
                   3.0 * 1.5 - 2.0 * 2);
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) { return fn::avg_y(b.field("f")); }, in),
                   3.0 * 2 - 2.0 * 1.5);
}

TEST(Functions, UpwindSelectsDonorSide) {
  FieldCatalog cat;
  cat.create("q", 6, 6, 2, HaloSpec{2, 2}).fill_with([](int i, int, int) { return 1.0 * i; });
  cat.create("cr", 6, 6, 2, HaloSpec{2, 2}).fill(0.7);
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) { return fn::upwind_x(b.field("q"), b.field("cr")); }, cat),
                   1.0);  // donor is i-1
  cat.at("cr").fill(-0.7);
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) { return fn::upwind_x(b.field("q"), b.field("cr")); }, cat),
                   2.0);  // donor is i
}

TEST(Functions, SpongeRampClampsAndPeaks) {
  FieldCatalog cat;
  cat.create("x", 6, 6, 2, HaloSpec{2, 2});
  auto probe = [&](double x) {
    cat.at("x").fill(x);
    return eval_fn([](StencilBuilder& b) {
      return fn::sponge_ramp(E(b.field("x")), E(100.0), E(100.0));
    }, cat);
  };
  EXPECT_DOUBLE_EQ(probe(100.0), 0.0);   // at the edge: no damping
  EXPECT_DOUBLE_EQ(probe(200.0), 0.0);   // beyond: clamped to zero
  EXPECT_NEAR(probe(0.0), 1.0, 1e-12);   // at the top: full strength
  EXPECT_NEAR(probe(50.0), std::pow(std::sin(M_PI / 4), 2.0), 1e-12);
}

TEST(Functions, VorticityDivergenceOfLinearWind) {
  FieldCatalog cat;
  cat.create("u", 6, 6, 2, HaloSpec{2, 2}).fill_with([](int i, int j, int) {
    return 2.0 * i + 1.0 * j;
  });
  cat.create("v", 6, 6, 2, HaloSpec{2, 2}).fill_with([](int i, int j, int) {
    return -1.0 * i + 3.0 * j;
  });
  cat.create("rdx", 6, 6, 1, HaloSpec{2, 2}).fill(1.0);
  cat.create("rdy", 6, 6, 1, HaloSpec{2, 2}).fill(1.0);
  // zeta = dv/dx - du/dy = -1 - 1 = -2 ; div = du/dx + dv/dy = 2 + 3 = 5.
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) {
                     return fn::vorticity(b.field("u"), b.field("v"), b.field("rdx"),
                                          b.field("rdy"));
                   }, cat),
                   -2.0);
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) {
                     return fn::divergence(b.field("u"), b.field("v"), b.field("rdx"),
                                           b.field("rdy"));
                   }, cat),
                   5.0);
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) {
                     return fn::kinetic_energy(b.field("u"), b.field("v"));
                   }, cat),
                   0.5 * (6.0 * 6.0 + 4.0 * 4.0));
}

TEST(Functions, FluxDivergenceTelescopes) {
  FieldCatalog cat;
  cat.create("fx", 6, 6, 2, HaloSpec{2, 2}).fill_with([](int i, int, int) { return 1.0 * i; });
  cat.create("fy", 6, 6, 2, HaloSpec{2, 2}).fill_with([](int, int j, int) { return 2.0 * j; });
  // (fx - fx(i+1)) + (fy - fy(j+1)) = -1 - 2 = -3 everywhere.
  EXPECT_DOUBLE_EQ(eval_fn([](StencilBuilder& b) {
                     return fn::flux_divergence(b.field("fx"), b.field("fy"));
                   }, cat),
                   -3.0);
}

}  // namespace
}  // namespace cyclone::fv3
