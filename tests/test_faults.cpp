#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "comm/simcomm.hpp"
#include "comm/verify_distributed.hpp"
#include "core/dsl/builder.hpp"
#include "core/util/rng.hpp"
#include "fv3/verify_distributed.hpp"
#include "grid/partitioner.hpp"

namespace cyclone::comm {
namespace {

using dsl::E;
using dsl::StencilBuilder;

// ---- Test programs (mirroring test_runtime.cpp) ----------------------------

ir::Program make_diffusion_program() {
  ir::Program p("diffusion");
  p.append_state(ir::State{"hx", {ir::SNode::make_halo_exchange("hx.q", {"q"}, 3)}});
  StencilBuilder b("diffuse");
  auto q = b.field("q");
  auto lap = b.field("lap");
  auto out = b.field("out");
  b.parallel().full().assign(lap, q(1, 0) + q(-1, 0) + q(0, 1) + q(0, -1) - E(q) * 4.0);
  b.parallel().full().assign(
      out, E(q) + (lap(1, 0) + lap(-1, 0) + lap(0, 1) + lap(0, -1) - E(lap) * 4.0) * 0.1);
  p.append_state(ir::State{"compute", {ir::SNode::make_stencil("diffuse", b.build())}});
  return p;
}

ir::Program make_vector_program() {
  ir::Program p("vector");
  p.append_state(
      ir::State{"hx", {ir::SNode::make_halo_exchange("hx.uv", {"u", "v"}, 3, true)}});
  StencilBuilder b("div");
  auto u = b.field("u");
  auto v = b.field("v");
  auto d = b.field("d");
  b.parallel().full().assign(d, u(1, 0) - u(-1, 0) + v(0, 1) - v(0, -1));
  p.append_state(ir::State{"compute", {ir::SNode::make_stencil("div", b.build())}});
  return p;
}

std::vector<exec::LaunchDomain> domains_for(const grid::Partitioner& part, int nk) {
  std::vector<exec::LaunchDomain> doms;
  for (int r = 0; r < part.num_ranks(); ++r) {
    const auto info = part.info(r);
    exec::LaunchDomain dom{info.ni, info.nj, nk};
    dom.gi0 = info.i0;
    dom.gj0 = info.j0;
    dom.gni = part.n();
    dom.gnj = part.n();
    doms.push_back(dom);
  }
  return doms;
}

/// Push `count` tagged messages through a fault-injected channel and require
/// recv to hand back the exact fault-free sequence.
void require_reliable_roundtrip(ConcurrentComm& comm, int count) {
  std::thread sender([&] {
    for (int i = 0; i < count; ++i) {
      comm.isend(0, 1, 1, {static_cast<double>(i), static_cast<double>(i) * 0.5});
    }
  });
  for (int i = 0; i < count; ++i) {
    const auto data = comm.recv(1, 0, 1);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_EQ(data[0], static_cast<double>(i)) << "message " << i << " out of sequence";
    EXPECT_EQ(data[1], static_cast<double>(i) * 0.5);
  }
  sender.join();
  comm.purge_acknowledged();
  EXPECT_TRUE(comm.all_drained());
}

// ---- Reliable channel under wire faults ------------------------------------

TEST(FaultChannel, ReliableDeliveryUnderDrop) {
  FaultPlan plan;
  plan.seed = 0xD401;
  plan.drop_rate = 0.5;
  plan.retry_base_us = 50;  // keep the retransmit backoff cheap in tests
  ConcurrentComm comm(2);
  comm.set_fault_plan(plan);
  require_reliable_roundtrip(comm, 64);
  const ReliabilityCounters c = comm.reliability();
  EXPECT_EQ(c.reliable_sends, 64);
  EXPECT_GT(c.drops_injected, 0);
  EXPECT_GT(c.retransmits, 0);
  EXPECT_EQ(c.corrupt_detected, 0);
}

TEST(FaultChannel, CorruptionDetectedAndHealed) {
  FaultPlan plan;
  plan.seed = 0xC0;
  plan.corrupt_rate = 0.5;
  plan.retry_base_us = 50;
  ConcurrentComm comm(2);
  comm.set_fault_plan(plan);
  require_reliable_roundtrip(comm, 64);
  const ReliabilityCounters c = comm.reliability();
  EXPECT_GT(c.corrupts_injected, 0);
  // Every injected flip must be caught by the checksum — none may reach recv.
  EXPECT_GE(c.corrupt_detected, 1);
  EXPECT_GT(c.retransmits, 0);
}

TEST(FaultChannel, DuplicatesSuppressed) {
  FaultPlan plan;
  plan.seed = 0xD0B;
  plan.duplicate_rate = 0.8;
  ConcurrentComm comm(2);
  comm.set_fault_plan(plan);
  require_reliable_roundtrip(comm, 64);
  const ReliabilityCounters c = comm.reliability();
  EXPECT_GT(c.dups_injected, 0);
  EXPECT_GT(c.dups_dropped, 0);
}

TEST(FaultChannel, ReorderHealed) {
  FaultPlan plan;
  plan.seed = 0x12E;
  plan.reorder_rate = 0.7;
  ConcurrentComm comm(2);
  comm.set_fault_plan(plan);
  require_reliable_roundtrip(comm, 64);
  const ReliabilityCounters c = comm.reliability();
  EXPECT_GT(c.reorders_injected, 0);
  EXPECT_GT(c.reorders_healed, 0);
}

TEST(FaultChannel, SurvivesCombinedFaultSoup) {
  FaultPlan plan;
  plan.seed = 0x50F;
  plan.drop_rate = 0.2;
  plan.duplicate_rate = 0.2;
  plan.reorder_rate = 0.2;
  plan.corrupt_rate = 0.2;
  plan.delay_rate = 0.3;
  plan.delay_max_us = 100;
  plan.retry_base_us = 50;
  ConcurrentComm comm(2);
  comm.set_fault_plan(plan);
  require_reliable_roundtrip(comm, 128);
  EXPECT_GT(comm.reliability().faults_injected(), 0);
}

TEST(FaultChannel, ZeroCostWhenOff) {
  // An inactive plan must leave the raw fast path untouched: no envelopes,
  // no counters, nothing retained for retransmission.
  ConcurrentComm comm(2);
  comm.set_fault_plan(FaultPlan{});  // inactive
  for (int i = 0; i < 8; ++i) comm.isend(0, 1, 1, {static_cast<double>(i)});
  for (int i = 0; i < 8; ++i) EXPECT_EQ(comm.recv(1, 0, 1)[0], static_cast<double>(i));
  const ReliabilityCounters c = comm.reliability();
  EXPECT_EQ(c.reliable_sends, 0);
  EXPECT_EQ(c.faults_injected(), 0);
  EXPECT_EQ(c.retransmits, 0);
  EXPECT_TRUE(comm.all_drained());
}

TEST(FaultChannel, SimCommReliableDelivery) {
  // The lockstep mailbox gets the same envelope discipline (with an
  // idealized synchronous retransmit), so fault plans can also be replayed
  // under the sequential reference scheduler.
  FaultPlan plan;
  plan.seed = 0x51;
  plan.drop_rate = 0.4;
  plan.duplicate_rate = 0.3;
  plan.corrupt_rate = 0.3;
  SimComm sim(2);
  sim.set_fault_plan(plan);
  for (int i = 0; i < 64; ++i) sim.isend(0, 1, 2, {static_cast<double>(i)});
  for (int i = 0; i < 64; ++i) {
    const auto data = sim.recv(1, 0, 2);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0], static_cast<double>(i));
  }
  sim.purge_acknowledged();
  EXPECT_TRUE(sim.all_drained());
  const ReliabilityCounters c = sim.reliability();
  EXPECT_EQ(c.reliable_sends, 64);
  EXPECT_GT(c.faults_injected(), 0);
  EXPECT_GT(c.retransmits, 0);
}

// ---- Fault plan / injector determinism -------------------------------------

TEST(FaultPlanTest, DeterministicDecisions) {
  FaultPlan plan;
  plan.seed = 0xABCDEF;
  plan.drop_rate = 0.3;
  plan.duplicate_rate = 0.3;
  plan.corrupt_rate = 0.3;
  plan.delay_rate = 0.3;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  bool any_fault = false;
  for (long seq = 0; seq < 200; ++seq) {
    const auto fa = a.fate(0, 1, 7, seq, 0, 128);
    const auto fb = b.fate(0, 1, 7, seq, 0, 128);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.duplicate, fb.duplicate);
    EXPECT_EQ(fa.corrupt, fb.corrupt);
    EXPECT_EQ(fa.corrupt_word, fb.corrupt_word);
    EXPECT_EQ(fa.corrupt_bit, fb.corrupt_bit);
    EXPECT_EQ(fa.delay_us, fb.delay_us);
    any_fault = any_fault || fa.drop || fa.duplicate || fa.corrupt || fa.delay_us > 0;
  }
  EXPECT_TRUE(any_fault);
  // Attempts are independent coins: the retransmit of a dropped message must
  // not be doomed to the same fate.
  bool differs = false;
  for (long seq = 0; seq < 200 && !differs; ++seq) {
    differs = a.fate(0, 1, 7, seq, 0, 128).drop != a.fate(0, 1, 7, seq, 1, 128).drop;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, ScopeFiltersRestrictInjection) {
  FaultPlan plan;
  plan.seed = 0xF11;
  plan.drop_rate = 1.0;
  plan.only_src = 3;
  const FaultInjector inj(plan);
  EXPECT_TRUE(inj.fate(3, 1, 7, 0, 0, 8).drop);
  EXPECT_FALSE(inj.fate(2, 1, 7, 0, 0, 8).drop);
  FaultPlan tag_plan = plan;
  tag_plan.only_src = -1;
  tag_plan.only_tag = 9;
  const FaultInjector tinj(tag_plan);
  EXPECT_TRUE(tinj.fate(0, 1, 9, 0, 0, 8).drop);
  EXPECT_FALSE(tinj.fate(0, 1, 7, 0, 0, 8).drop);
}

TEST(FaultPlanTest, ShouldFailIsOneShotUntilRearmed) {
  FaultPlan plan;
  plan.failure = FaultPlan::Failure::Crash;
  plan.fail_rank = 2;
  plan.fail_step = 1;
  plan.fail_at_state = 0;
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.should_fail(2, 0, 0));  // wrong step
  EXPECT_FALSE(inj.should_fail(1, 1, 0));  // wrong rank
  EXPECT_TRUE(inj.should_fail(2, 1, 0));
  EXPECT_FALSE(inj.should_fail(2, 1, 0));  // latched: a restarted rank is healthy
  inj.rearm();
  EXPECT_TRUE(inj.should_fail(2, 1, 0));
}

TEST(FaultPlanTest, DescribePlanNamesTheFaults) {
  FaultPlan plan;
  plan.seed = 0x2A;
  plan.drop_rate = 0.25;
  plan.failure = FaultPlan::Failure::Crash;
  plan.fail_rank = 1;
  plan.fail_step = 2;
  const std::string desc = describe_plan(plan);
  EXPECT_NE(desc.find("drop"), std::string::npos) << desc;
  EXPECT_NE(desc.find("crash"), std::string::npos) << desc;
  EXPECT_NE(describe_plan(FaultPlan{}).find("inactive"), std::string::npos);
}

TEST(FaultPlanTest, ChecksumCatchesEverySingleBitFlip) {
  std::vector<double> data = {1.0, -2.5, 3.75, 0.0};
  const uint64_t clean = payload_checksum(data);
  for (size_t word = 0; word < data.size(); ++word) {
    for (int bit : {0, 31, 52, 63}) {
      std::vector<double> mutated = data;
      flip_payload_bit(mutated, word, bit);
      EXPECT_NE(payload_checksum(mutated), clean) << "word " << word << " bit " << bit;
    }
  }
}

// ---- Checkpoint / rollback-restart recovery --------------------------------

/// Build a 6-rank diffusion runtime plus the pristine seed catalogs needed to
/// re-run it from identical initial conditions.
struct Fixture {
  ir::Program p = make_diffusion_program();
  grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  HaloUpdater halo{part, 3};
  std::vector<exec::LaunchDomain> doms = domains_for(part, 3);
  std::vector<FieldCatalog> cats;

  Fixture() {
    for (int r = 0; r < part.num_ranks(); ++r) {
      cats.push_back(verify::make_test_catalog(p, p, doms[static_cast<size_t>(r)],
                                               Rng::mix(0xFA17, static_cast<uint64_t>(r))));
    }
  }

  std::vector<RankDomain> bind() {
    std::vector<RankDomain> ranks;
    for (size_t r = 0; r < cats.size(); ++r) ranks.push_back(RankDomain{&cats[r], doms[r]});
    return ranks;
  }
};

TEST(Recovery, CrashRollsBackAndMatchesFaultFreeRun) {
  // Reference: the same program, seeds and step count with no faults.
  Fixture ref;
  {
    ConcurrentRuntime rt(ref.p, ref.halo, ref.bind(), RuntimeOptions{});
    for (int s = 0; s < 3; ++s) rt.step();
  }

  Fixture subject;
  RuntimeOptions opt;
  opt.faults.seed = 0xCAFE;
  opt.faults.failure = FaultPlan::Failure::Crash;
  opt.faults.fail_rank = 2;
  opt.faults.fail_step = 1;
  opt.faults.fail_at_state = 1;
  opt.recovery.enabled = true;
  MemoryCheckpointStore store;
  opt.recovery.store = &store;
  ConcurrentRuntime rt(subject.p, subject.halo, subject.bind(), opt);
  const RunReport rr = rt.run(3);
  EXPECT_TRUE(rr.ok) << rr.failure;
  EXPECT_EQ(rr.steps_completed, 3);
  EXPECT_EQ(rr.restarts, 1);
  EXPECT_GE(rr.checkpoints, 1);
  EXPECT_EQ(store.restores(), 1);
  EXPECT_EQ(rt.halo().pool_outstanding(), 0);

  for (size_t r = 0; r < ref.cats.size(); ++r) {
    for (const auto& name : ref.cats[r].names()) {
      const auto d = verify::compare_fields_bitwise("r" + std::to_string(r) + "/" + name,
                                                    ref.cats[r].at(name), subject.cats[r].at(name));
      EXPECT_TRUE(d.ok) << d.field << " diverges after crash recovery (" << d.max_ulps
                        << " ulps)";
    }
  }
}

TEST(Recovery, HangDetectedByHeartbeatMonitor) {
  Fixture f;
  RuntimeOptions opt;
  opt.faults.seed = 0x4A26;
  opt.faults.failure = FaultPlan::Failure::Hang;
  opt.faults.fail_rank = 4;
  opt.faults.fail_step = 0;
  opt.faults.fail_at_state = 1;
  opt.recovery.enabled = true;
  opt.recovery.heartbeat_timeout_seconds = 0.3;
  ConcurrentRuntime rt(f.p, f.halo, f.bind(), opt);
  const RunReport rr = rt.run(2);
  EXPECT_TRUE(rr.ok) << rr.failure;
  EXPECT_EQ(rr.restarts, 1);
  EXPECT_EQ(rt.halo().pool_outstanding(), 0);
}

TEST(Recovery, ReportsInsteadOfThrowingWhenRecoveryImpossible) {
  // Total loss: every wire copy and every retransmission is dropped, so each
  // attempt exhausts max_retransmits and each restart hits the same wall.
  // run() must degrade to a structured failing report, not an exception.
  Fixture f;
  RuntimeOptions opt;
  opt.faults.seed = 0xDEAD;
  opt.faults.drop_rate = 1.0;
  opt.faults.max_retransmits = 3;
  opt.faults.retry_base_us = 50;
  opt.recovery.enabled = true;
  opt.recovery.max_restarts = 1;
  ConcurrentRuntime rt(f.p, f.halo, f.bind(), opt);
  const RunReport rr = rt.run(2);
  EXPECT_FALSE(rr.ok);
  EXPECT_NE(rr.failure.find("lost after"), std::string::npos) << rr.failure;
  EXPECT_EQ(rr.restarts, 1);
  EXPECT_LT(rr.steps_completed, 2);
  // The failed runtime must still be reusable: pools reset, channel clear.
  EXPECT_EQ(rt.halo().pool_outstanding(), 0);
  rt.set_fault_options(FaultPlan{}, RecoveryOptions{});
  const RunReport clean = rt.run(1);
  EXPECT_TRUE(clean.ok) << clean.failure;
}

TEST(Recovery, DisabledRecoveryDegradesToFailingReport) {
  Fixture f;
  RuntimeOptions opt;
  opt.faults.seed = 0x0FF;
  opt.faults.failure = FaultPlan::Failure::Crash;
  opt.faults.fail_rank = 0;
  opt.faults.fail_step = 0;
  opt.faults.fail_at_state = 1;
  ConcurrentRuntime rt(f.p, f.halo, f.bind(), opt);  // recovery.enabled = false
  const RunReport rr = rt.run(2);
  EXPECT_FALSE(rr.ok);
  EXPECT_EQ(rr.restarts, 0);
  EXPECT_NE(rr.failure.find("crashed"), std::string::npos) << rr.failure;
  EXPECT_EQ(rt.halo().pool_outstanding(), 0);
}

TEST(Recovery, CheckpointIntervalBoundsRollbackDepth) {
  // Crash during step 3 with checkpoints every 2 steps: the newest
  // checkpoint holds the end of step 1, so the completed step 2 is the one
  // step discarded by the rollback.
  Fixture f;
  RuntimeOptions opt;
  opt.faults.seed = 0x1D;
  opt.faults.failure = FaultPlan::Failure::Crash;
  opt.faults.fail_rank = 1;
  opt.faults.fail_step = 3;
  opt.faults.fail_at_state = 1;
  opt.recovery.enabled = true;
  opt.recovery.checkpoint_interval = 2;
  MemoryCheckpointStore store;
  opt.recovery.store = &store;
  ConcurrentRuntime rt(f.p, f.halo, f.bind(), opt);
  const RunReport rr = rt.run(5);
  EXPECT_TRUE(rr.ok) << rr.failure;
  EXPECT_EQ(rr.restarts, 1);
  EXPECT_EQ(rr.rolled_back_steps, 1);
  EXPECT_EQ(rr.steps_completed, 5);
}

// ---- Chaos sweeps: bitwise identity under injected faults ------------------

TEST(Chaos, DiffusionFaultToleranceSweep) {
  // The acceptance matrix: rank counts x {drop, duplicate, reorder, corrupt,
  // crash} x 20 seeds, every recovered run bitwise against fault-free
  // lockstep.
  const ir::Program p = make_diffusion_program();
  for (const int nranks : {6, 24}) {
    const grid::Partitioner part = grid::Partitioner::for_ranks(12, nranks);
    verify::FaultToleranceOptions opt;
    opt.seeds_per_mode = 20;
    const verify::EquivalenceReport report = verify::check_fault_tolerant(p, part, 3, 3, opt);
    EXPECT_TRUE(report.equivalent) << nranks << " ranks: " << report.first_failure();
    EXPECT_EQ(report.domains.size(), 100u);  // 5 modes x 20 seeds
  }
}

TEST(Chaos, VectorFaultToleranceSweep) {
  // The rotated-vector exchange (sign flips across cube faces) under the
  // same fault families: retransmitted vector halos must rotate identically.
  const ir::Program p = make_vector_program();
  for (const int nranks : {6, 24}) {
    const grid::Partitioner part = grid::Partitioner::for_ranks(12, nranks);
    verify::FaultToleranceOptions opt;
    opt.seeds_per_mode = 20;
    const verify::EquivalenceReport report = verify::check_fault_tolerant(p, part, 4, 3, opt);
    EXPECT_TRUE(report.equivalent) << nranks << " ranks: " << report.first_failure();
  }
}

TEST(Chaos, DelayAndHangModesAlsoHeal) {
  // Delay is absorbed by visibility-time waits; Hang exercises the heartbeat
  // monitor end to end. Both are opt-in (wall-clock cost), so a small sweep.
  const ir::Program p = make_diffusion_program();
  const grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  verify::FaultToleranceOptions opt;
  opt.modes = {verify::FaultMode::Delay, verify::FaultMode::Hang};
  opt.seeds_per_mode = 2;
  opt.hang_heartbeat_seconds = 0.3;
  const verify::EquivalenceReport report = verify::check_fault_tolerant(p, part, 3, 3, opt);
  EXPECT_TRUE(report.equivalent) << report.first_failure();
}

TEST(Chaos, DycoreResilientAcrossFaultModes) {
  // Full FV3 program graph through run_resilient: acoustic loop, tracer
  // transport, remap and every halo node, with checkpoints flowing through
  // the fv3 Savepoint store. The deep 20-seed dycore sweep runs in the CI
  // chaos job via verify_pipeline --chaos.
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 4;
  cfg.ntracers = 1;

  fv3::DycoreChaosOptions opt;
  opt.seeds_per_mode = 3;
  const verify::EquivalenceReport report = fv3::verify_resilient_dycore(cfg, 6, opt);
  EXPECT_TRUE(report.equivalent) << report.first_failure();
  EXPECT_EQ(report.domains.size(), 15u);  // 5 modes x 3 seeds
}

}  // namespace
}  // namespace cyclone::comm
