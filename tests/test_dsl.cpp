#include <gtest/gtest.h>

#include "core/dsl/analysis.hpp"
#include "core/dsl/builder.hpp"

namespace cyclone::dsl {
namespace {

TEST(Ast, ToStringRendersExpressions) {
  FieldVar a("a"), b("b");
  E e = a(1, 0) * 2.0 + sqrt(E(b));
  EXPECT_EQ(to_string(e.expr()), "((a[1,0,0] * 2) + sqrt(b))");
}

TEST(Ast, ExprEqualStructural) {
  FieldVar a("a");
  E e1 = a(1, 0) + 2.0;
  E e2 = a(1, 0) + 2.0;
  E e3 = a(0, 1) + 2.0;
  EXPECT_TRUE(expr_equal(e1.expr(), e2.expr()));
  EXPECT_FALSE(expr_equal(e1.expr(), e3.expr()));
}

TEST(Ast, FlopsCountsPowAsExpensive) {
  FieldVar a("a");
  const long cheap = expr_flops((E(a) * E(a)).expr());
  const long costly = expr_flops(pow(E(a), 2.0).expr());
  EXPECT_EQ(cheap, 1);
  EXPECT_EQ(costly, 250);
  EXPECT_EQ(expr_flops(pow(E(a), 2.0).expr(), 5), 5);
}

TEST(Interval, Resolution) {
  const int nk = 80;
  EXPECT_EQ(full_interval().lo_level(nk), 0);
  EXPECT_EQ(full_interval().hi_level(nk), 80);
  EXPECT_EQ(first_levels(2).hi_level(nk), 2);
  EXPECT_EQ(last_levels(3).lo_level(nk), 77);
  EXPECT_EQ(single_level(5).size(nk), 1);
  EXPECT_EQ(inner_levels(1, 1).lo_level(nk), 1);
  EXPECT_EQ(inner_levels(1, 1).hi_level(nk), 79);
}

TEST(Region, Helpers) {
  const Region r = region_i_start(2);
  EXPECT_TRUE(r.i_lo.set);
  EXPECT_EQ(r.i_hi.off, 2);
  EXPECT_FALSE(r.j_lo.set);

  const Region c = region_i_start(1).intersect(region_j_end(1));
  EXPECT_TRUE(c.i_lo.set);
  EXPECT_TRUE(c.j_hi.set);
  EXPECT_TRUE(c.j_lo.from_end);
}

TEST(Builder, ConstructsBlocksAndStatements) {
  StencilBuilder b("lap");
  auto in = b.field("in");
  auto out = b.field("out");
  b.parallel().full().assign(out, in(-1, 0) + in(1, 0) + in(0, -1) + in(0, 1) - 4.0 * E(in));
  const StencilFunc s = b.build();
  EXPECT_EQ(s.name(), "lap");
  ASSERT_EQ(s.blocks().size(), 1u);
  EXPECT_EQ(s.blocks()[0].order, IterOrder::Parallel);
  EXPECT_EQ(s.num_operations(), 1);
}

TEST(Builder, FieldParamNameClashRejected) {
  StencilBuilder b("x");
  (void)b.field("q");
  EXPECT_THROW((void)b.param("q"), cyclone::Error);
  StencilBuilder b2("y");
  (void)b2.param("dt");
  EXPECT_THROW((void)b2.field("dt"), cyclone::Error);
}

TEST(Analysis, ReadWriteSets) {
  StencilBuilder b("s");
  auto in = b.field("in");
  auto out = b.field("out");
  auto dt = b.param("dt");
  b.parallel().full().assign(out, E(dt) * (in(-2, 0) + in(0, 3)));
  const auto info = analyze(b.build());
  ASSERT_TRUE(info.reads_field("in"));
  EXPECT_FALSE(info.reads_field("out"));
  EXPECT_TRUE(info.writes_field("out"));
  EXPECT_EQ(info.reads.at("in").i_lo, -2);
  EXPECT_EQ(info.reads.at("in").j_hi, 3);
  EXPECT_EQ(info.params.count("dt"), 1u);
}

TEST(Analysis, TransitiveExtentInference) {
  // tmp = f(in[-1..1]); out = tmp[-1..1]  =>  in needed at [-2..2].
  StencilBuilder b("chain");
  auto in = b.field("in");
  auto out = b.field("out");
  auto tmp = b.temp("tmp");
  b.parallel()
      .full()
      .assign(tmp, in(-1, 0) + in(1, 0))
      .assign(out, tmp(-1, 0) + tmp(1, 0));
  const auto extents = infer_read_extents(b.build());
  ASSERT_TRUE(extents.count("in"));
  EXPECT_EQ(extents.at("in").i_lo, -2);
  EXPECT_EQ(extents.at("in").i_hi, 2);
  ASSERT_TRUE(extents.count("tmp"));
  EXPECT_EQ(extents.at("tmp").i_lo, -1);
}

TEST(Analysis, ThreadFusibility) {
  Stmt producer{"a", (FieldVar("in")(0, 0) * 2.0).expr(), std::nullopt};
  Stmt pointwise{"b", E(FieldVar("a")).expr(), std::nullopt};
  Stmt offset{"c", FieldVar("a")(1, 0).expr(), std::nullopt};
  Stmt unrelated{"d", E(FieldVar("z")).expr(), std::nullopt};
  EXPECT_TRUE(thread_fusible(producer, pointwise));
  EXPECT_FALSE(thread_fusible(producer, offset));
  EXPECT_TRUE(thread_fusible(producer, unrelated));
  EXPECT_TRUE(all_thread_fusible({producer, pointwise, unrelated}));
  EXPECT_FALSE(all_thread_fusible({producer, pointwise, offset}));
}

TEST(Analysis, FusionReadExtent) {
  Stmt producer{"a", (FieldVar("in")(0, 0) * 2.0).expr(), std::nullopt};
  Stmt consumer{"c", (FieldVar("a")(1, 0) + FieldVar("a")(-2, 1)).expr(), std::nullopt};
  const Extent e = fusion_read_extent(producer, consumer);
  EXPECT_EQ(e.i_lo, -2);
  EXPECT_EQ(e.i_hi, 1);
  EXPECT_EQ(e.j_hi, 1);
}

TEST(Validate, RejectsEmptyStencil) {
  StencilBuilder b("empty");
  EXPECT_THROW((void)b.build(), cyclone::ValidationError);
}

TEST(Validate, RejectsEmptyIntervalBlock) {
  StencilBuilder b("s");
  (void)b.parallel().full();
  EXPECT_THROW((void)b.build(), cyclone::ValidationError);
}

TEST(Validate, RejectsParallelKOffsetOnBlockWrittenField) {
  StencilBuilder b("s");
  auto a = b.field("a");
  auto c = b.field("c");
  b.parallel().full().assign(a, E(c) * 1.0).assign(c, a.at_k(-1));
  EXPECT_THROW((void)b.build(), cyclone::ValidationError);
}

TEST(Validate, AllowsSelfReadInParallel) {
  // Reading the statement's own LHS uses pre-assignment values (value
  // semantics) and is legal, as in GT4Py.
  StencilBuilder b("s");
  auto a = b.field("a");
  b.parallel().full().assign(a, a(1, 0) + a(-1, 0));
  EXPECT_NO_THROW((void)b.build());
}

TEST(Validate, ForwardMayReadBelowNotAbove) {
  {
    StencilBuilder b("ok");
    auto a = b.field("a");
    b.forward().interval(inner_levels(1, 0)).assign(a, a.at_k(-1) * 0.5);
    EXPECT_NO_THROW((void)b.build());
  }
  {
    StencilBuilder b("bad");
    auto a = b.field("a");
    b.forward().full().assign(a, a.at_k(1) * 0.5);
    EXPECT_THROW((void)b.build(), cyclone::ValidationError);
  }
}

TEST(Validate, BackwardMayReadAboveNotBelow) {
  {
    StencilBuilder b("ok");
    auto a = b.field("a");
    b.backward().interval(inner_levels(0, 1)).assign(a, a.at_k(1) * 0.5);
    EXPECT_NO_THROW((void)b.build());
  }
  {
    StencilBuilder b("bad");
    auto a = b.field("a");
    b.backward().full().assign(a, a.at_k(-1) * 0.5);
    EXPECT_THROW((void)b.build(), cyclone::ValidationError);
  }
}

TEST(Validate, RejectsAssignToParam) {
  StencilBuilder b("s");
  auto dt = b.param("dt");
  (void)dt;
  auto a = b.field("a");
  (void)a;
  // Construct the malformed statement manually (the builder API makes this
  // hard to reach, which is the point).
  StencilFunc s("s", {ComputationBlock{IterOrder::Parallel,
                                       {IntervalBlock{full_interval(),
                                                      {Stmt{"dt", E(a).expr(), std::nullopt}}}}}},
                {}, {"dt"});
  EXPECT_THROW(validate(s), cyclone::ValidationError);
}

TEST(Validate, RejectsNeverWrittenTemporary) {
  StencilFunc s("s",
                {ComputationBlock{
                    IterOrder::Parallel,
                    {IntervalBlock{full_interval(),
                                   {Stmt{"out", E(FieldVar("tmp")).expr(), std::nullopt}}}}}},
                {"tmp"}, {});
  EXPECT_THROW(validate(s), cyclone::ValidationError);
}

TEST(Validate, RejectsEmptyRegionBounds) {
  StencilBuilder b("s");
  auto a = b.field("a");
  Region r;
  r.i_lo = {true, false, 3};
  r.i_hi = {true, false, 1};
  b.parallel().full().assign_in(r, a, E(a) * 2.0);
  EXPECT_THROW((void)b.build(), cyclone::ValidationError);
}

}  // namespace
}  // namespace cyclone::dsl
