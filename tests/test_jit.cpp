// JIT codegen backend: kernel-cache behavior (miss/hit/eviction, on-disk
// reuse across process "restarts", poisoned-entry recovery), tape-engine
// fallback paths, and translation validation of the generated native
// kernels against the reference interpreter at 0 ULP — including the
// 200-program random sweep across thread counts and the full baroclinic
// dycore step.
//
// Naming note: suite/test names deliberately avoid the substrings the
// sanitizer CI jobs select on (they would dlopen libgomp-linked kernels
// into the clang/libomp TSan build).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/dsl/builder.hpp"
#include "core/exec/jit/cache.hpp"
#include "core/exec/jit/compiler.hpp"
#include "core/exec/jit/jit.hpp"
#include "core/util/rng.hpp"
#include "core/verify/random_program.hpp"
#include "core/verify/verify.hpp"
#include "fv3/dyn_core.hpp"
#include "fv3/state.hpp"
#include "grid/partitioner.hpp"

namespace cyclone {
namespace {

namespace fs = std::filesystem;
using exec::jit::CacheStats;
using exec::jit::KernelCache;

// Scratch paths live under the build tree (CYCLONE_TEST_TMPDIR), never the
// cwd: a test run from the source checkout must not litter it.
std::string test_tmp(const std::string& name) {
  fs::create_directories(CYCLONE_TEST_TMPDIR);
  return std::string(CYCLONE_TEST_TMPDIR) + "/" + name;
}

// Keep the process-global kernel cache (used by Program's Jit backend) in a
// build-tree directory instead of the user's ~/.cache. Static init runs
// before the global cache is first constructed.
const bool kCacheEnvReady = [] {
  if (!std::getenv("CYCLONE_JIT_CACHE_DIR")) {
    ::setenv("CYCLONE_JIT_CACHE_DIR", test_tmp("jit-global-cache").c_str(), 1);
  }
  return true;
}();

std::string fresh_dir(const std::string& name) {
  const std::string dir = test_tmp("jit-test-" + name);
  fs::remove_all(dir);
  return dir;
}

bool have_compiler() { return !exec::jit::host_compiler().empty(); }

constexpr const char* kProbeSrcA = "extern \"C\" int cy_probe(void) { return 7; }\n";
constexpr const char* kProbeSrcB = "extern \"C\" int cy_probe(void) { return 8; }\n";
constexpr const char* kProbeSrcC = "extern \"C\" int cy_probe(void) { return 9; }\n";

int call_probe(const std::shared_ptr<exec::jit::LoadedModule>& mod) {
  using Fn = int (*)();
  auto* fn = reinterpret_cast<Fn>(mod->symbol("cy_probe"));
  return fn ? fn() : -1;
}

// ------------------------------------------------------------- cache -----

TEST(JitCache, MissCompilesHitServesFromMemoryAndLruEvicts) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  KernelCache cache(fresh_dir("lru"), /*max_memory_entries=*/2);
  std::string err;

  auto a = cache.get(KernelCache::make_key("a", kProbeSrcA), kProbeSrcA, err);
  ASSERT_TRUE(a) << err;
  EXPECT_EQ(call_probe(a), 7);
  auto a2 = cache.get(KernelCache::make_key("a", kProbeSrcA), kProbeSrcA, err);
  EXPECT_EQ(a.get(), a2.get());
  CacheStats st = cache.stats();
  EXPECT_EQ(st.compiles, 1);
  EXPECT_EQ(st.mem_hits, 1);
  EXPECT_EQ(st.evictions, 0);

  // Two more distinct entries overflow the 2-entry memory level.
  ASSERT_TRUE(cache.get(KernelCache::make_key("b", kProbeSrcB), kProbeSrcB, err)) << err;
  ASSERT_TRUE(cache.get(KernelCache::make_key("c", kProbeSrcC), kProbeSrcC, err)) << err;
  st = cache.stats();
  EXPECT_EQ(st.compiles, 3);
  EXPECT_EQ(st.evictions, 1);
  // The evicted entry ('a', least recently used) reloads from disk, not a
  // recompile; the handle obtained before eviction stays valid throughout.
  auto a3 = cache.get(KernelCache::make_key("a", kProbeSrcA), kProbeSrcA, err);
  ASSERT_TRUE(a3) << err;
  EXPECT_EQ(call_probe(a3), 7);
  EXPECT_EQ(call_probe(a), 7);
  st = cache.stats();
  EXPECT_EQ(st.compiles, 3);
  EXPECT_EQ(st.disk_hits, 1);
}

TEST(JitCache, DiskEntriesSurviveRestart) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  const std::string dir = fresh_dir("restart");
  const std::string key = KernelCache::make_key("restart", kProbeSrcA);
  std::string err;
  {
    KernelCache first(dir);
    ASSERT_TRUE(first.get(key, kProbeSrcA, err)) << err;
    EXPECT_EQ(first.stats().compiles, 1);
  }
  // A fresh cache instance over the same directory models a new process:
  // the module loads from disk with zero compiler invocations.
  KernelCache second(dir);
  auto mod = second.get(key, kProbeSrcA, err);
  ASSERT_TRUE(mod) << err;
  EXPECT_EQ(call_probe(mod), 7);
  const CacheStats st = second.stats();
  EXPECT_EQ(st.compiles, 0);
  EXPECT_EQ(st.disk_hits, 1);
}

TEST(JitCache, PoisonedDiskEntryIsRebuiltNotFatal) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  const std::string dir = fresh_dir("poison");
  const std::string key = KernelCache::make_key("poison", kProbeSrcA);
  std::string err;
  {
    KernelCache first(dir);
    ASSERT_TRUE(first.get(key, kProbeSrcA, err)) << err;
  }
  {
    std::ofstream so(dir + "/" + key + ".so", std::ios::trunc);
    so << "this is not a shared object";
  }
  KernelCache second(dir);
  auto mod = second.get(key, kProbeSrcA, err);
  ASSERT_TRUE(mod) << err;
  EXPECT_EQ(call_probe(mod), 7);
  const CacheStats st = second.stats();
  EXPECT_EQ(st.poisoned, 1);
  EXPECT_EQ(st.compiles, 1);
  EXPECT_EQ(st.disk_hits, 0);
}

// -------------------------------------------------------- fallbacks -----

dsl::StencilFunc cross_stencil() {
  dsl::StencilBuilder b("cross");
  auto in = b.field("in");
  auto out = b.field("out");
  b.parallel().full().assign(out, in(1, 0) + in(-1, 0) + in(0, 1) + in(0, -1));
  return b.build();
}

ir::Program cross_program(exec::StencilArgs args = {}) {
  ir::Program p("cross");
  p.append_state(ir::State{"s", {ir::SNode::make_stencil("cross", cross_stencil(), args)}});
  return p;
}

TEST(JitBackend, AliasedSlotBindingTakesTapePathWithSameValues) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  auto cs = std::make_shared<exec::CompiledStencil>(cross_stencil());
  KernelCache cache(fresh_dir("alias"));
  auto jp = exec::jit::JitProgram::build("alias", {{"cross", cs}}, cache);
  ASSERT_TRUE(jp->native()) << jp->error();

  // Both formals bound to one catalog field: slots alias, so the restrict-
  // carrying kernel must not run. The launch still executes (tape engine)
  // and produces exactly what the engine produces.
  exec::StencilArgs args;
  args.bind = {{"in", "f"}, {"out", "f"}};
  const exec::LaunchDomain dom{8, 7, 4};
  const ir::Program aliased = cross_program(args);
  FieldCatalog jc = verify::make_test_catalog(aliased, aliased, dom, 0x5EED);
  FieldCatalog tc = verify::make_test_catalog(aliased, aliased, dom, 0x5EED);
  jp->run(*cs, jc, args, dom, sched::Schedule{}, exec::RunOptions{});
  EXPECT_EQ(jp->fallbacks(), 1);
  cs->run(tc, args, dom);
  const auto div = verify::compare_fields_bitwise("f", jc.at("f"), tc.at("f"));
  EXPECT_TRUE(div.ok) << "aliased fallback diverged from tape engine";
}

TEST(JitBackend, UnbuildableModuleFallsBackToTape) {
  auto cs = std::make_shared<exec::CompiledStencil>(cross_stencil());
  // A cache rooted somewhere unwritable can never produce a module; the
  // build must degrade, not throw, and runs must still compute.
  KernelCache cache("/proc/cyclone-jit-nonexistent/cache");
  auto jp = exec::jit::JitProgram::build("broken", {{"cross", cs}}, cache);
  EXPECT_FALSE(jp->native());
  EXPECT_FALSE(jp->error().empty());

  const exec::LaunchDomain dom{6, 5, 3};
  const ir::Program plain = cross_program();
  FieldCatalog jc = verify::make_test_catalog(plain, plain, dom, 0xF00D);
  FieldCatalog tc = verify::make_test_catalog(plain, plain, dom, 0xF00D);
  jp->run(*cs, jc, {}, dom, sched::Schedule{}, exec::RunOptions{});
  EXPECT_EQ(jp->fallbacks(), 1);
  cs->run(tc, {}, dom);
  const auto div = verify::compare_fields_bitwise("out", jc.at("out"), tc.at("out"));
  EXPECT_TRUE(div.ok);
}

TEST(JitBackend, MissingCompilerDegradesGracefully) {
  // End-to-end through the CLI so compiler discovery itself (a process-wide
  // memoized lookup) sees the broken CYCLONE_JIT_CXX.
  const char* tool = "../tools/verify_pipeline";
  if (!fs::exists(tool)) GTEST_SKIP() << "verify_pipeline not built here";
  const std::string cache_dir = test_tmp("jit-test-nocc");
  const std::string log_path = test_tmp("jit-test-nocc.out");
  const std::string cmd = std::string("CYCLONE_JIT_CXX=/nonexistent/cxx CYCLONE_JIT_CACHE_DIR=") +
                          cache_dir + " " + tool +
                          " --program fuzz:1 --backend jit --compare-serial > " + log_path +
                          " 2>&1";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "jit backend without a compiler must still verify clean";
  std::ifstream log(log_path);
  std::string text((std::istreambuf_iterator<char>(log)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("falling back to tape engine"), std::string::npos) << text;
}

// ----------------------------------------- translation validation -----

exec::RunOptions jit_run(int threads) {
  exec::RunOptions run;
  run.backend = exec::ExecBackend::Jit;
  run.num_threads = threads;
  return run;
}

TEST(JitBackend, CrossStencilBitwiseVsInterpreter) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  const auto report = verify::check_parallel_agrees(cross_program(), jit_run(2));
  EXPECT_TRUE(report.equivalent) << report.first_failure();
}

/// The acceptance sweep: 200 random programs (same seed family as the
/// engine's determinism sweep), each run on the JIT backend at thread
/// counts {1, 2, 7} over a reduced domain list — bulk, corner placement on
/// a larger global tile, and a degenerate strip — and compared bitwise
/// against the serial reference interpreter. One compiled module per
/// program serves all thread counts (schedule knobs are runtime
/// arguments), keeping the sweep at 200 host-compiler invocations.
TEST(JitSweep, TwoHundredRandomProgramsBitwiseAcrossThreads) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  constexpr uint64_t kSweepBase = 0x9A7A11E1ull;  // matches the engine sweep
  verify::VerifyOptions vo;
  exec::LaunchDomain corner{9, 7, 6};
  corner.gni = 18;
  corner.gnj = 14;
  corner.gi0 = 9;
  corner.gj0 = 7;
  vo.domains = {exec::LaunchDomain{13, 11, 6}, corner, exec::LaunchDomain{1, 6, 5}};
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t seed = Rng::mix(kSweepBase, i);
    const ir::Program p = verify::random_program(seed);
    for (const int threads : {1, 2, 7}) {
      const auto report = verify::check_parallel_agrees(p, jit_run(threads), -1, -1, vo);
      EXPECT_TRUE(report.equivalent)
          << "seed=" << seed << " threads=" << threads << " " << report.first_failure();
      if (!report.equivalent) return;  // one reproducer is enough to debug
    }
  }
}

/// Full baroclinic dynamical-core step on the JIT backend, bitwise against
/// the reference interpreter on the model's own placement.
TEST(JitBackend, DycoreStepBitwiseVsInterpreter) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.ntracers = 2;
  grid::Partitioner part(cfg.npx, 1, 1);
  fv3::ModelState state(cfg, part, 0);
  const ir::Program prog = fv3::build_dycore_program(state);
  verify::VerifyOptions vo;
  vo.domains = {state.domain()};
  const auto report =
      verify::check_parallel_agrees(verify::without_callbacks(prog), jit_run(2), -1, -1, vo);
  EXPECT_TRUE(report.equivalent) << report.first_failure();
}

}  // namespace
}  // namespace cyclone
