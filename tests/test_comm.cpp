#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>

#include "comm/channel.hpp"
#include "comm/halo.hpp"
#include "core/util/rng.hpp"
#include "grid/geometry.hpp"

namespace cyclone::comm {
namespace {

TEST(SimComm, SendRecvRoundTrip) {
  SimComm comm(4);
  comm.isend(0, 1, 7, {1.0, 2.0, 3.0});
  EXPECT_TRUE(comm.probe(1, 0, 7));
  const auto data = comm.recv(1, 0, 7);
  ASSERT_EQ(data.size(), 3u);
  EXPECT_EQ(data[1], 2.0);
  EXPECT_TRUE(comm.all_drained());
}

TEST(SimComm, FifoOrderPerChannel) {
  SimComm comm(2);
  comm.isend(0, 1, 1, {1.0});
  comm.isend(0, 1, 1, {2.0});
  EXPECT_EQ(comm.recv(1, 0, 1)[0], 1.0);
  EXPECT_EQ(comm.recv(1, 0, 1)[0], 2.0);
}

TEST(SimComm, TagsSeparateChannels) {
  SimComm comm(2);
  comm.isend(0, 1, 1, {1.0});
  comm.isend(0, 1, 2, {2.0});
  EXPECT_EQ(comm.recv(1, 0, 2)[0], 2.0);
  EXPECT_EQ(comm.recv(1, 0, 1)[0], 1.0);
}

TEST(SimComm, RecvWithoutMessageThrows) {
  SimComm comm(2);
  EXPECT_THROW(comm.recv(1, 0, 7), Error);
}

TEST(SimComm, CountersTrackTraffic) {
  SimComm comm(3);
  comm.isend(0, 1, 1, std::vector<double>(10, 0.0));
  comm.isend(2, 1, 1, std::vector<double>(5, 0.0));
  EXPECT_EQ(comm.total_messages(), 2);
  EXPECT_EQ(comm.total_bytes(), 15 * 8);
  EXPECT_EQ(comm.messages_from(0), 1);
  EXPECT_EQ(comm.bytes_from(2), 40);
  comm.reset_counters();
  EXPECT_EQ(comm.total_messages(), 0);
}

TEST(SimComm, RankBoundsChecked) {
  SimComm comm(2);
  EXPECT_THROW(comm.isend(0, 5, 1, {1.0}), Error);
}

TEST(NetworkModel, AlphaBetaCost) {
  NetworkModel net;
  net.latency = 1e-6;
  net.bandwidth = 1e9;
  EXPECT_NEAR(net.time(10, 1000000), 10e-6 + 1e-3, 1e-12);
}

// ---- Halo exchange --------------------------------------------------------

struct DistField {
  std::vector<std::unique_ptr<FieldD>> storage;
  std::vector<FieldD*> ptrs;

  DistField(const grid::Partitioner& part, int nk, int halo, const std::string& name) {
    for (int r = 0; r < part.num_ranks(); ++r) {
      const auto info = part.info(r);
      storage.push_back(std::make_unique<FieldD>(
          name, FieldShape(info.ni, info.nj, nk, HaloSpec{halo, halo})));
      ptrs.push_back(storage.back().get());
    }
  }
};

/// Fill each rank's interior with a unique global signature value.
void fill_signature(const grid::Partitioner& part, DistField& f) {
  for (int r = 0; r < part.num_ranks(); ++r) {
    const auto info = part.info(r);
    for (int k = 0; k < f.ptrs[r]->shape().nk(); ++k) {
      for (int j = 0; j < info.nj; ++j) {
        for (int i = 0; i < info.ni; ++i) {
          (*f.ptrs[r])(i, j, k) =
              info.tile * 1e6 + (info.i0 + i) * 1e3 + (info.j0 + j) + k * 1e-3;
        }
      }
    }
  }
}

double signature(const grid::Partitioner& part, int tile, int gi, int gj, int k) {
  (void)part;
  return tile * 1e6 + gi * 1e3 + gj + k * 1e-3;
}

class HaloExchangeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HaloExchangeTest, ScalarHaloMatchesOwners) {
  const auto [n, ranks_per_tile] = GetParam();
  const grid::Partitioner part = grid::Partitioner::for_ranks(n, 6 * ranks_per_tile);
  const int width = 3, nk = 2;
  HaloUpdater updater(part, width);
  SimComm comm(part.num_ranks());

  DistField q(part, nk, width, "q");
  fill_signature(part, q);
  updater.exchange_scalar(q.ptrs, comm);
  EXPECT_TRUE(comm.all_drained());

  // Every resolvable halo cell must now hold its owner's signature.
  for (int r = 0; r < part.num_ranks(); ++r) {
    const auto info = part.info(r);
    for (int k = 0; k < nk; ++k) {
      for (int lj = -width; lj < info.nj + width; ++lj) {
        for (int li = -width; li < info.ni + width; ++li) {
          const bool interior = li >= 0 && li < info.ni && lj >= 0 && lj < info.nj;
          if (interior) continue;
          const auto res = part.resolve(r, li, lj);
          if (!res) continue;  // corner diagonal
          if (res->rank == r) continue;
          EXPECT_DOUBLE_EQ((*q.ptrs[r])(li, lj, k),
                           signature(part, res->tile, res->gi, res->gj, k))
              << "rank " << r << " cell (" << li << "," << lj << "," << k << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, HaloExchangeTest,
                         ::testing::Values(std::pair{12, 1}, std::pair{12, 4},
                                           std::pair{24, 4}, std::pair{24, 9}));

TEST(HaloUpdater, VectorExchangeRotatesComponents) {
  // Build a globally smooth tangent vector field (projection of a constant
  // 3-D vector onto the sphere, expressed in each tile's local basis).
  // After exchange, halo values must match the local evaluation of the same
  // analytic field in *my* basis — which is exactly what the component
  // rotation guarantees.
  const int n = 16, width = 2;
  const grid::Partitioner part(n, 1, 1);
  HaloUpdater updater(part, width);
  SimComm comm(part.num_ranks());

  const std::array<double, 3> w = {0.3, -0.7, 0.5};  // arbitrary direction

  auto local_uv = [&](int tile, double ic, double jc) {
    constexpr double kH = 1e-5;
    auto norm3 = [](std::array<double, 3> v) {
      const double m = std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
      return std::array<double, 3>{v[0] / m, v[1] / m, v[2] / m};
    };
    const double a = (ic + 0.5) * 2.0 / n - 1.0;
    const double b = (jc + 0.5) * 2.0 / n - 1.0;
    const auto p0 = norm3(grid::face_to_xyz(tile, a, b));
    const auto pa = norm3(grid::face_to_xyz(tile, a + kH, b));
    const auto pb = norm3(grid::face_to_xyz(tile, a, b + kH));
    auto unit = [&](std::array<double, 3> d) { return norm3(d); };
    const auto eu = unit({pa[0] - p0[0], pa[1] - p0[1], pa[2] - p0[2]});
    const auto ev = unit({pb[0] - p0[0], pb[1] - p0[1], pb[2] - p0[2]});
    const double u = w[0] * eu[0] + w[1] * eu[1] + w[2] * eu[2];
    const double v = w[0] * ev[0] + w[1] * ev[1] + w[2] * ev[2];
    return std::pair{u, v};
  };

  DistField u(part, 1, width, "u"), v(part, 1, width, "v");
  for (int r = 0; r < part.num_ranks(); ++r) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const auto [uu, vv] = local_uv(r, i, j);
        (*u.ptrs[r])(i, j, 0) = uu;
        (*v.ptrs[r])(i, j, 0) = vv;
      }
    }
  }
  updater.exchange_vector(u.ptrs, v.ptrs, comm);

  // Check a mid-edge band of halo cells on every tile edge:
  // exchanged-and-rotated values vs. direct evaluation in my extended frame.
  // The index-level permutation matches the physical rotation only up to the
  // gnomonic bases' non-orthogonality (which grows toward cube corners), so
  // test the band around edge midpoints with a loose tolerance.
  // A wrong sign or a swapped permutation produces errors of ~2x the
  // component magnitude; gnomonic distortion stays well under 0.45 in the
  // mid-edge band. (Exact permutation correctness is asserted separately in
  // HaloVectorTransformExactCases.)
  for (int r = 0; r < part.num_ranks(); ++r) {
    for (int t = 5 * n / 16; t < 11 * n / 16; ++t) {
      for (auto [i, j] : {std::pair{-1, t}, {n, t}, {t, -1}, {t, n}}) {
        const auto [ue, ve] = local_uv(r, i, j);
        EXPECT_NEAR((*u.ptrs[r])(i, j, 0), ue, 0.45) << "rank " << r << " (" << i << "," << j;
        EXPECT_NEAR((*v.ptrs[r])(i, j, 0), ve, 0.45) << "rank " << r << " (" << i << "," << j;
      }
    }
  }
}

TEST(HaloUpdater, HaloVectorTransformExactCases) {
  // Hand-derived from the face frames in cube_topology.cpp:
  //  * the equatorial ring (faces 0-3) is orientation-aligned: crossing an
  //    east/west edge keeps (u, v) unchanged;
  //  * face 4's west edge meets face 3's north edge with the tangential
  //    index reversed: u_dest = v_src, v_dest = -u_src.
  const int n = 16;
  for (int t : {2, 8, 13}) {
    const auto ring = grid::halo_vector_transform(0, n, t, n);  // face 0 -> 1
    EXPECT_EQ(ring[0], 1.0);
    EXPECT_EQ(ring[1], 0.0);
    EXPECT_EQ(ring[2], 0.0);
    EXPECT_EQ(ring[3], 1.0);

    const auto polar = grid::halo_vector_transform(4, -1, t, n);  // face 4 -> 3
    EXPECT_EQ(polar[0], 0.0);
    EXPECT_EQ(polar[1], 1.0);
    EXPECT_EQ(polar[2], -1.0);
    EXPECT_EQ(polar[3], 0.0);

    const auto cell = grid::resolve_cell(4, -1, t, n);
    ASSERT_TRUE(cell.has_value());
    EXPECT_EQ(cell->tile, 3);
    EXPECT_EQ(cell->i, n - 1 - t);
    EXPECT_EQ(cell->j, n - 1);
  }
}

TEST(HaloUpdater, MessageCountsReasonable) {
  const grid::Partitioner part(16, 2, 2);
  HaloUpdater updater(part, 3);
  for (int r = 0; r < part.num_ranks(); ++r) {
    // Each rank talks to at least 2 and at most 8 neighbors.
    EXPECT_GE(updater.messages_per_rank(r), 2);
    EXPECT_LE(updater.messages_per_rank(r), 8);
    EXPECT_GT(updater.cells_sent_per_rank(r), 0);
  }
}

TEST(HaloUpdater, FillCornersUsesEdgeHalos) {
  FieldD f("q", 6, 6, 1, HaloSpec{2, 2});
  f.fill(-1.0);
  // Mark edge halos with recognizable values.
  for (int d = 0; d < 2; ++d) {
    for (int t = 0; t < 6; ++t) {
      f(-1 - d, t, 0) = 100 + d;  // west
      f(6 + d, t, 0) = 200 + d;   // east
      f(t, -1 - d, 0) = 300 + d;  // south
      f(t, 6 + d, 0) = 400 + d;   // north
    }
  }
  FieldD fx("qx", 6, 6, 1, HaloSpec{2, 2});
  fx.copy_from(f);
  fill_corners(fx, 2, CornerFill::XDir);
  // XDir corners come from the west/east halos.
  EXPECT_EQ(fx(-1, -1, 0), 100.0);
  EXPECT_EQ(fx(7, 7, 0), 201.0);

  FieldD fy("qy", 6, 6, 1, HaloSpec{2, 2});
  fy.copy_from(f);
  fill_corners(fy, 2, CornerFill::YDir);
  // YDir corners come from the south/north halos.
  EXPECT_EQ(fy(-1, -1, 0), 300.0);
  EXPECT_EQ(fy(7, 7, 0), 401.0);
}

TEST(HaloUpdater, ExchangePreservesInterior) {
  const grid::Partitioner part(12, 1, 1);
  HaloUpdater updater(part, 3);
  SimComm comm(part.num_ranks());
  DistField q(part, 3, 3, "q");
  fill_signature(part, q);
  DistField before(part, 3, 3, "before");
  for (int r = 0; r < 6; ++r) before.ptrs[r]->copy_from(*q.ptrs[r]);
  updater.exchange_scalar(q.ptrs, comm);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(FieldD::max_abs_diff(*q.ptrs[r], *before.ptrs[r]), 0.0);  // interior unchanged
  }
}

}  // namespace
}  // namespace cyclone::comm

namespace cyclone::comm {
namespace {

TEST(HaloUpdater, GroupedExchangeMatchesPerField) {
  const grid::Partitioner part(12, 1, 1);
  HaloUpdater updater(part, 3);

  DistField a1(part, 2, 3, "a"), a2(part, 2, 3, "a2");
  DistField b1(part, 2, 3, "b"), b2(part, 2, 3, "b2");
  fill_signature(part, a1);
  fill_signature(part, b1);
  for (int r = 0; r < 6; ++r) {
    // Distinguish the two fields so a pack-order bug shows up.
    for (int k = 0; k < 2; ++k)
      for (int j = 0; j < 12; ++j)
        for (int i = 0; i < 12; ++i) (*b1.ptrs[r])(i, j, k) += 0.5;
    a2.ptrs[r]->copy_from(*a1.ptrs[r]);
    b2.ptrs[r]->copy_from(*b1.ptrs[r]);
  }

  SimComm c_sep(6), c_grp(6);
  updater.exchange_scalar(a1.ptrs, c_sep);
  updater.exchange_scalar(b1.ptrs, c_sep);
  updater.exchange_group({a2.ptrs, b2.ptrs}, c_grp);

  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(FieldD::max_abs_diff(*a1.ptrs[r], *a2.ptrs[r], true), 0.0);
    EXPECT_EQ(FieldD::max_abs_diff(*b1.ptrs[r], *b2.ptrs[r], true), 0.0);
  }
  // Coalescing: same bytes, half the messages.
  EXPECT_EQ(c_grp.total_bytes(), c_sep.total_bytes());
  EXPECT_EQ(c_grp.total_messages() * 2, c_sep.total_messages());
}

TEST(CommCounters, AssertDrainedListsNonEmptyMailboxes) {
  SimComm comm(4);
  comm.isend(0, 1, 7, {1.0, 2.0});
  comm.isend(2, 3, 9, {3.0});
  try {
    comm.assert_drained();
    FAIL() << "expected assert_drained to throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    // The error names every (src, dst, tag) channel left non-empty.
    EXPECT_NE(msg.find("0->1 tag 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2->3 tag 9"), std::string::npos) << msg;
  }
}

TEST(CommCounters, RecvDeadlockErrorListsPendingMessages) {
  SimComm comm(4);
  comm.isend(0, 1, 7, {1.0, 2.0});
  try {
    (void)comm.recv(3, 2, 5);  // nothing was ever sent on this channel
    FAIL() << "expected recv to throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no message from 2 to 3 tag 5"), std::string::npos) << msg;
    // The pending-message snapshot shows which sends are still in flight.
    EXPECT_NE(msg.find("0->1 tag 7"), std::string::npos) << msg;
  }
}

TEST(HaloUpdater, BufferPoolReusesStagingBuffers) {
  const grid::Partitioner part(12, 1, 1);
  HaloUpdater updater(part, 3);
  SimComm comm(6);
  DistField q(part, 2, 3, "q");
  fill_signature(part, q);

  const auto totals = [&] {
    long alloc = 0, reuse = 0;
    for (int r = 0; r < 6; ++r) {
      alloc += updater.pool_allocations(r);
      reuse += updater.pool_reuses(r);
    }
    return std::pair{alloc, reuse};
  };

  updater.exchange_scalar(q.ptrs, comm);
  const auto [alloc1, reuse1] = totals();
  EXPECT_GT(alloc1, 0);
  EXPECT_EQ(reuse1, 0);

  // Steady state: every message's staging buffer comes from the pool.
  updater.exchange_scalar(q.ptrs, comm);
  const auto [alloc2, reuse2] = totals();
  EXPECT_EQ(alloc2, alloc1);
  EXPECT_EQ(reuse2, alloc1);

  // Pooling off restores the allocate-per-message behavior (counters idle).
  updater.set_buffer_pooling(false);
  updater.exchange_scalar(q.ptrs, comm);
  const auto [alloc3, reuse3] = totals();
  EXPECT_EQ(alloc3, alloc2);
  EXPECT_EQ(reuse3, reuse2);
  updater.set_buffer_pooling(true);
}

TEST(HaloUpdater, SplitExchangeOverlapsCompute) {
  const grid::Partitioner part(12, 1, 1);
  HaloUpdater updater(part, 3);
  SimComm comm(6);

  DistField q(part, 2, 3, "q"), ref(part, 2, 3, "ref");
  fill_signature(part, q);
  fill_signature(part, ref);

  updater.start_exchange(q.ptrs, comm);
  // "Compute" on the interior while messages are in flight.
  for (int r = 0; r < 6; ++r) (*q.ptrs[r])(5, 5, 0) += 1.0;
  updater.finish_exchange(q.ptrs, comm);
  EXPECT_TRUE(comm.all_drained());

  updater.exchange_scalar(ref.ptrs, comm);
  for (int r = 0; r < 6; ++r) {
    // Halos identical to the blocking exchange...
    for (int d = 1; d <= 3; ++d) {
      EXPECT_EQ((*q.ptrs[r])(-d, 4, 1), (*ref.ptrs[r])(-d, 4, 1));
      EXPECT_EQ((*q.ptrs[r])(4, 11 + d, 1), (*ref.ptrs[r])(4, 11 + d, 1));
    }
    // ...and the interior update survived the overlap.
    EXPECT_EQ((*q.ptrs[r])(5, 5, 0), (*ref.ptrs[r])(5, 5, 0) + 1.0);
  }
}

// ---- Concurrent-channel stress --------------------------------------------

/// Fill a vector pair with per-component signatures so a sign flip or a
/// swapped (u, v) rotation at a cube face shows up as a value mismatch.
void fill_vector_signature(const grid::Partitioner& part, DistField& u, DistField& v) {
  fill_signature(part, u);
  fill_signature(part, v);
  for (int r = 0; r < part.num_ranks(); ++r) {
    const auto info = part.info(r);
    for (int k = 0; k < v.ptrs[r]->shape().nk(); ++k) {
      for (int j = 0; j < info.nj; ++j) {
        for (int i = 0; i < info.ni; ++i) (*v.ptrs[r])(i, j, k) += 0.25;
      }
    }
  }
}

TEST(CommStress, RandomizedArrivalMatchesLockstepReference) {
  // Drive the per-rank exchange primitives from real threads through the
  // concurrent channel, with seeded arrival jitter randomizing the
  // cross-channel message order, and require the result to be bitwise
  // identical to the sequential SimComm reference — including the
  // sign-flipping vector rotation at cube faces.
  const grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  const int width = 3, nk = 2, nranks = part.num_ranks();
  HaloUpdater updater(part, width);

  DistField ref_q(part, nk, width, "q"), ref_u(part, nk, width, "u"), ref_v(part, nk, width, "v");
  fill_signature(part, ref_q);
  fill_vector_signature(part, ref_u, ref_v);
  SimComm sim(nranks);
  updater.exchange_scalar(ref_q.ptrs, sim);
  updater.exchange_vector(ref_u.ptrs, ref_v.ptrs, sim);
  EXPECT_TRUE(sim.all_drained());

  for (int rep = 0; rep < 20; ++rep) {
    ConcurrentComm::Options opt;
    opt.arrival_jitter_seed = Rng::mix(0xC0117E57ull, static_cast<uint64_t>(rep));
    opt.arrival_jitter_max_us = 150;
    ConcurrentComm comm(nranks, opt);

    DistField q(part, nk, width, "q"), u(part, nk, width, "u"), v(part, nk, width, "v");
    fill_signature(part, q);
    fill_vector_signature(part, u, v);

    std::vector<std::thread> threads;
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&, r] {
        updater.start_scalars_rank(r, {q.ptrs[r]}, comm);
        updater.start_vector_rank(r, *u.ptrs[r], *v.ptrs[r], comm);
        updater.finish_scalars_rank(r, {q.ptrs[r]}, comm);
        updater.finish_vector_rank(r, *u.ptrs[r], *v.ptrs[r], comm);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_TRUE(comm.all_drained());
    EXPECT_EQ(comm.total_messages(), sim.total_messages());
    EXPECT_EQ(comm.total_bytes(), sim.total_bytes());

    for (int r = 0; r < nranks; ++r) {
      EXPECT_EQ(FieldD::max_abs_diff(*q.ptrs[r], *ref_q.ptrs[r], true), 0.0)
          << "q rank " << r << " rep " << rep;
      EXPECT_EQ(FieldD::max_abs_diff(*u.ptrs[r], *ref_u.ptrs[r], true), 0.0)
          << "u rank " << r << " rep " << rep;
      EXPECT_EQ(FieldD::max_abs_diff(*v.ptrs[r], *ref_v.ptrs[r], true), 0.0)
          << "v rank " << r << " rep " << rep;
    }
  }
}

TEST(CommStress, GroupedExchangeUnderThreads) {
  // Coalesced multi-field messages through the concurrent channel: one
  // message per neighbor carries both fields, in the same pack order as the
  // lockstep grouped exchange.
  const grid::Partitioner part = grid::Partitioner::for_ranks(12, 6);
  const int nranks = part.num_ranks();
  HaloUpdater updater(part, 3);

  DistField ra(part, 2, 3, "a"), rb(part, 2, 3, "b");
  fill_signature(part, ra);
  fill_vector_signature(part, ra, rb);  // rb = signature + 0.25
  SimComm sim(nranks);
  updater.exchange_group({ra.ptrs, rb.ptrs}, sim);

  ConcurrentComm::Options opt;
  opt.arrival_jitter_seed = 0x6E0;
  ConcurrentComm comm(nranks, opt);
  DistField a(part, 2, 3, "a"), b(part, 2, 3, "b");
  fill_signature(part, a);
  fill_vector_signature(part, a, b);

  std::vector<std::thread> threads;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      const std::vector<const FieldD*> send{a.ptrs[r], b.ptrs[r]};
      std::vector<FieldD*> recv{a.ptrs[r], b.ptrs[r]};
      updater.start_scalars_rank(r, send, comm);
      updater.finish_scalars_rank(r, recv, comm);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(comm.total_messages(), sim.total_messages());
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(FieldD::max_abs_diff(*a.ptrs[r], *ra.ptrs[r], true), 0.0) << "a rank " << r;
    EXPECT_EQ(FieldD::max_abs_diff(*b.ptrs[r], *rb.ptrs[r], true), 0.0) << "b rank " << r;
  }
}

}  // namespace
}  // namespace cyclone::comm
