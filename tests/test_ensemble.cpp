#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/verify/corpus.hpp"
#include "ensemble/ensemble.hpp"
#include "ensemble/service.hpp"
#include "ensemble/tune.hpp"
#include "ensemble/verify_ensemble.hpp"

namespace cyclone::ensemble {
namespace {

swe::SweConfig small_swe() {
  swe::SweConfig cfg;
  cfg.npx = 12;
  cfg.ntracers = 2;
  return cfg;
}

fv3::FvConfig small_dycore() {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 4;
  cfg.k_split = 1;
  cfg.n_split = 2;
  cfg.ntracers = 1;
  cfg.dt = 300.0;
  return cfg;
}

// --- Perturbation generator -------------------------------------------------

TEST(EnsemblePerturb, FactorIsPureAndControlIsIdentity) {
  const MemberSpec control{42, 0};
  EXPECT_EQ(perturbation_factor(control, "h", 3, 5, 7, 0, 1e-3), 1.0);

  const MemberSpec spec{42, 3};
  const double f1 = perturbation_factor(spec, "h", 3, 5, 7, 0, 1e-3);
  const double f2 = perturbation_factor(spec, "h", 3, 5, 7, 0, 1e-3);
  EXPECT_EQ(f1, f2);  // pure function: bit-identical on every call
  EXPECT_GE(f1, 1.0 - 1e-3);
  EXPECT_LT(f1, 1.0 + 1e-3);

  // Every argument decorrelates the stream.
  EXPECT_NE(f1, perturbation_factor({42, 4}, "h", 3, 5, 7, 0, 1e-3));
  EXPECT_NE(f1, perturbation_factor({43, 3}, "h", 3, 5, 7, 0, 1e-3));
  EXPECT_NE(f1, perturbation_factor(spec, "u", 3, 5, 7, 0, 1e-3));
  EXPECT_NE(f1, perturbation_factor(spec, "h", 2, 5, 7, 0, 1e-3));
  EXPECT_NE(f1, perturbation_factor(spec, "h", 3, 6, 7, 0, 1e-3));
  EXPECT_NE(f1, perturbation_factor(spec, "h", 3, 5, 8, 0, 1e-3));
}

TEST(EnsemblePerturb, SameSeedSameICsAcrossProcesses) {
  // Two independently-built models stand in for two processes: same spec
  // must give bit-identical initial conditions everywhere.
  const swe::SweConfig cfg = small_swe();
  const MemberSpec spec{7, 2};
  swe::SweModel a(cfg, 6);
  swe::SweModel b(cfg, 6);
  for (swe::SweModel* model : {&a, &b}) {
    apply_initial_condition(*model, "hill");
    perturb_model(*model, spec, 1e-3);
  }
  for (int r = 0; r < a.num_ranks(); ++r) {
    for (const std::string& name : swe::SweState::prognostic_names(cfg.ntracers)) {
      EXPECT_TRUE(bitwise_equal(a.state(r).f(name), b.state(r).f(name)))
          << "rank " << r << " field " << name;
    }
  }
}

TEST(EnsemblePerturb, PerturbedICsAreDecompositionInvariant) {
  // The factor depends only on global coordinates, so assembling the global
  // perturbed IC from a 6-rank and a 24-rank decomposition must agree.
  const swe::SweConfig cfg = small_swe();
  const MemberSpec spec{11, 1};
  std::vector<verify::GoldenField> assembled[2];
  const int rank_counts[2] = {6, 24};
  for (int variant = 0; variant < 2; ++variant) {
    swe::SweModel model(cfg, rank_counts[variant]);
    apply_initial_condition(model, "vortex");
    perturb_model(model, spec, 1e-3);
    std::vector<verify::RankView> views;
    for (int r = 0; r < model.num_ranks(); ++r) {
      const grid::RankInfo info = model.partitioner().info(r);
      views.push_back(verify::RankView{&model.state(r).catalog(), info.tile, info.i0, info.j0,
                                       info.ni, info.nj});
    }
    for (const std::string& name : swe::SweState::prognostic_names(cfg.ntracers)) {
      assembled[variant].push_back(
          verify::assemble_field(name, grid::kNumFaces, model.partitioner().n(), views));
    }
  }
  ASSERT_EQ(assembled[0].size(), assembled[1].size());
  for (size_t f = 0; f < assembled[0].size(); ++f) {
    EXPECT_EQ(assembled[0][f], assembled[1][f]) << assembled[0][f].name;
  }
}

// --- Member-major arena -----------------------------------------------------

TEST(EnsembleArena, MemberBlocksAreAdjacentAndMemberMajor) {
  const swe::SweConfig cfg = small_swe();
  EnsembleOptions opts;
  opts.members = default_members(1, 3);
  SweEnsemble runner(cfg, std::move(opts));
  // Every member's copy of a (rank, field) sits in one block at offset
  // member * alloc_elems.
  for (int r = 0; r < runner.member(0).num_ranks(); ++r) {
    FieldD& f0 = runner.member(0).state(r).f("h");
    ASSERT_TRUE(f0.is_view());
    const ptrdiff_t alloc = static_cast<ptrdiff_t>(f0.shape().alloc_elems());
    for (int m = 1; m < runner.members(); ++m) {
      FieldD& fm = runner.member(m).state(r).f("h");
      ASSERT_TRUE(fm.is_view());
      EXPECT_EQ(fm.data() - f0.data(), m * alloc) << "rank " << r << " member " << m;
    }
  }
  EXPECT_GT(runner.arena().num_blocks(), 0u);
  EXPECT_GT(runner.arena().bytes(), 0u);
}

TEST(EnsembleArena, FieldCopyOfViewOwnsItsStorage) {
  // Checkpoint stores snapshot fields by value; a snapshot aliasing live
  // arena memory would roll back nothing.
  const swe::SweConfig cfg = small_swe();
  EnsembleOptions opts;
  opts.members = default_members(1, 2);
  SweEnsemble runner(cfg, std::move(opts));
  runner.init("hill");
  FieldD& live = runner.member(1).state(0).f("h");
  FieldD snapshot = live;  // copy: must deep-copy
  EXPECT_FALSE(snapshot.is_view());
  const double before = live(0, 0, 0);
  live(0, 0, 0) = before + 1.0;
  EXPECT_EQ(snapshot(0, 0, 0), before);
  live.copy_from(snapshot);  // restore writes back *through* the view
  EXPECT_EQ(live(0, 0, 0), before);
  EXPECT_TRUE(live.is_view());
}

// --- Batched vs solo (the tentpole contract) --------------------------------

TEST(EnsembleBatched, SweMatchesSoloAcrossBackendsAndMemberCounts) {
  EnsembleVerifyOptions options;
  options.ic = "hill";
  options.steps = 2;
  options.member_counts = {1, 4};
  options.seeds = {0x5EEDull};
  const auto report = verify_batched_vs_solo<swe::SweModel>(small_swe(), options);
  EXPECT_TRUE(report.ok()) << (report.failures.empty() ? "no comparisons ran"
                                                       : report.failures.front());
  EXPECT_EQ(report.mismatches, 0);
}

TEST(EnsembleBatched, SweThirtyMembers) {
  // GEFS-scale member count on the cheap serial backend.
  EnsembleVerifyOptions options;
  options.ic = "vortex";
  options.steps = 1;
  options.member_counts = {30};
  options.backends = {exec::ExecBackend::Tape};
  options.seeds = {3};
  const auto report = verify_batched_vs_solo<swe::SweModel>(small_swe(), options);
  EXPECT_TRUE(report.ok()) << (report.failures.empty() ? "no comparisons ran"
                                                       : report.failures.front());
}

TEST(EnsembleBatched, SweTwentySeedSweep) {
  EnsembleVerifyOptions options;
  options.ic = "hill";
  options.steps = 1;
  options.member_counts = {4};
  options.backends = {exec::ExecBackend::Tape};
  options.seeds.clear();
  for (uint64_t s = 0; s < 20; ++s) options.seeds.push_back(0xA0 + s);
  const auto report = verify_batched_vs_solo<swe::SweModel>(small_swe(), options);
  EXPECT_TRUE(report.ok()) << (report.failures.empty() ? "no comparisons ran"
                                                       : report.failures.front());
  EXPECT_GE(report.comparisons, 20L * 4 * 6 * 3);  // seeds x members x ranks x fields(min)
}

TEST(EnsembleBatched, DycoreMatchesSoloAcrossBackends) {
  EnsembleVerifyOptions options;
  options.ic = "baro";
  options.steps = 1;
  options.member_counts = {1, 4};
  options.seeds = {0xD1CEull};
  const auto report = verify_batched_vs_solo<fv3::DistributedModel>(small_dycore(), options);
  EXPECT_TRUE(report.ok()) << (report.failures.empty() ? "no comparisons ran"
                                                       : report.failures.front());
}

TEST(EnsembleBatched, MemberBatchChunkingIsBitwiseInvariant) {
  // member_batch is pure cache blocking: any chunk size must reproduce the
  // unchunked result bit for bit.
  const swe::SweConfig cfg = small_swe();
  auto run = [&](int member_batch) {
    EnsembleOptions opts;
    opts.members = default_members(9, 5);
    opts.run.member_batch = member_batch;
    auto runner = std::make_unique<SweEnsemble>(cfg, std::move(opts));
    runner->init("jet");
    runner->run(2);
    return runner;
  };
  auto reference = run(0);
  for (int chunk : {1, 2, 3}) {
    auto chunked = run(chunk);
    for (int m = 0; m < reference->members(); ++m) {
      for (int r = 0; r < reference->member(m).num_ranks(); ++r) {
        for (const std::string& name : swe::SweState::prognostic_names(cfg.ntracers)) {
          EXPECT_TRUE(bitwise_equal(reference->member(m).state(r).f(name),
                                    chunked->member(m).state(r).f(name)))
              << "chunk " << chunk << " member " << m << " rank " << r << " field " << name;
        }
      }
    }
  }
}

TEST(EnsembleBatched, ConcurrentSchedulerMatchesSoloAtRanks6And24) {
  for (int ranks : {6, 24}) {
    EnsembleVerifyOptions options;
    options.ic = "hill";
    options.steps = 2;
    options.member_counts = {4};
    options.backends = {exec::ExecBackend::OpenMP};
    options.seeds = {0xC0ull};
    options.num_ranks = ranks;
    options.scheduler = EnsembleOptions::Scheduler::Concurrent;
    const auto report = verify_batched_vs_solo<swe::SweModel>(small_swe(), options);
    EXPECT_TRUE(report.ok()) << "ranks=" << ranks
                             << (report.failures.empty() ? " no comparisons ran"
                                                         : " " + report.failures.front());
  }
}

TEST(EnsembleBatched, BatchedAt24Ranks) {
  EnsembleVerifyOptions options;
  options.ic = "vortex";
  options.steps = 1;
  options.member_counts = {4};
  options.backends = {exec::ExecBackend::OpenMP};
  options.seeds = {0x24ull};
  options.num_ranks = 24;
  const auto report = verify_batched_vs_solo<swe::SweModel>(small_swe(), options);
  EXPECT_TRUE(report.ok()) << (report.failures.empty() ? "no comparisons ran"
                                                       : report.failures.front());
}

TEST(EnsembleBatched, MemberStepsAccounting) {
  EnsembleOptions opts;
  opts.members = default_members(1, 4);
  SweEnsemble runner(small_swe(), std::move(opts));
  runner.init("hill");
  runner.run(3);
  EXPECT_EQ(runner.member_steps(), 12);
}

// --- Resilient ensemble (crash mid-batch, recover, stay bitwise) ------------

TEST(EnsembleResilient, CrashedRankMidBatchRecoversBitwise) {
  const swe::SweConfig cfg = small_swe();
  const int steps = 2;
  EnsembleOptions opts;
  opts.members = default_members(0xFA11ull, 3);
  comm::FaultPlan faults;
  faults.seed = 0xFA11ull;
  faults.failure = comm::FaultPlan::Failure::Crash;
  faults.fail_rank = 2;
  faults.fail_step = 1;
  opts.runtime.faults = faults;
  SweEnsemble runner(cfg, std::move(opts));
  runner.init("hill");
  const comm::RunReport report = runner.run_resilient(steps);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.steps_completed, steps);
  EXPECT_GE(report.restarts, runner.members());  // every member's rank 2 died once

  // Recovered members must still match their clean solo replicas bit for bit.
  for (int m = 0; m < runner.members(); ++m) {
    auto solo = solo_member<swe::SweModel>(cfg, 6, exec::RunOptions{}, "hill",
                                           runner.options().members[static_cast<size_t>(m)],
                                           runner.options().amplitude);
    for (int s = 0; s < steps; ++s) solo->step();
    for (int r = 0; r < solo->num_ranks(); ++r) {
      for (const std::string& name : swe::SweState::prognostic_names(cfg.ntracers)) {
        EXPECT_TRUE(bitwise_equal(runner.member(m).state(r).f(name), solo->state(r).f(name)))
            << "member " << m << " rank " << r << " field " << name;
      }
    }
  }
}

// --- member_batch tuner -----------------------------------------------------

TEST(EnsembleTune, TuningRunsOnLiveStateWithoutPerturbingIt) {
  const swe::SweConfig cfg = small_swe();
  EnsembleOptions opts;
  opts.members = default_members(0x7E57, 5);
  opts.run.backend = exec::ExecBackend::Tape;

  EnsembleRunner<swe::SweModel> tuned(cfg, opts);
  tuned.init("vortex");
  const MemberBatchTuning tuning = tune_member_batch(tuned, {0, 1, 2}, /*reps=*/1);
  EXPECT_EQ(tuning.timings.size(), 3u);
  EXPECT_TRUE(tuning.best == 0 || tuning.best == 1 || tuning.best == 2);
  EXPECT_EQ(tuned.options().run.member_batch, tuning.best);

  // The tuner's (1 warm + 1 timed) steps per candidate are real timesteps:
  // a reference ensemble advanced the same count must match bitwise.
  const long steps_taken = tuned.member_steps() / tuned.members();
  EXPECT_EQ(steps_taken, 6);
  EnsembleRunner<swe::SweModel> reference(cfg, opts);
  reference.init("vortex");
  reference.run(static_cast<int>(steps_taken));
  for (int m = 0; m < tuned.members(); ++m) {
    for (int r = 0; r < tuned.member(m).num_ranks(); ++r) {
      for (const std::string& name : swe::SweState::prognostic_names(cfg.ntracers)) {
        EXPECT_TRUE(bitwise_equal(tuned.member(m).state(r).catalog().at(name),
                                  reference.member(m).state(r).catalog().at(name)))
            << "member " << m << " rank " << r << " field " << name;
      }
    }
  }
}

// --- Batch coalescer (pure policy) ------------------------------------------

ForecastRequest swe_request(const std::string& ic, int members, uint64_t seed, int steps = 1) {
  ForecastRequest r;
  r.core = "swe";
  r.ic = ic;
  r.npx = 12;
  r.ntracers = 2;
  r.members = members;
  r.seed = seed;
  r.steps = steps;
  return r;
}

TEST(ForecastCoalescer, MixedMemberCountsShareOneBatch) {
  std::vector<ForecastRequest> queue = {
      swe_request("hill", 4, 1),
      swe_request("hill", 2, 9),   // different seed, still coalescible
      swe_request("vortex", 2, 1), // different IC — not with this head
      swe_request("hill", 30, 1),  // same seed as head: 26 new specs
  };
  const auto picked = coalesce_batch(queue, 32);
  EXPECT_EQ(picked, (std::vector<size_t>{0, 1, 3}));  // roster 4 + 2 + 26 = 32
}

TEST(ForecastCoalescer, RespectsMemberCapAndSkipsOversized) {
  std::vector<ForecastRequest> queue = {
      swe_request("hill", 4, 1),
      swe_request("hill", 8, 2),  // would push the roster to 12 > 8 — skipped
      swe_request("hill", 2, 3),  // still fits after the skip
  };
  const auto picked = coalesce_batch(queue, 8);
  EXPECT_EQ(picked, (std::vector<size_t>{0, 2}));
}

TEST(ForecastCoalescer, IncompatibleRequestsNeverBatch) {
  ForecastRequest head = swe_request("hill", 2, 1, 2);
  ForecastRequest other_steps = head;
  other_steps.steps = 3;
  ForecastRequest other_backend = head;
  other_backend.backend = exec::ExecBackend::Jit;
  ForecastRequest other_chaos = head;
  other_chaos.chaos = true;
  ForecastRequest other_core = head;
  other_core.core = "dycore";
  other_core.ic = "baro";
  const std::vector<ForecastRequest> queue = {head, other_steps, other_backend, other_chaos,
                                              other_core};
  EXPECT_EQ(coalesce_batch(queue, 32), std::vector<size_t>{0});
}

TEST(ForecastCoalescer, HeadNeverStarves) {
  // A request larger than the cap still runs (the cap bounds coalescing,
  // not a single request).
  const std::vector<ForecastRequest> queue = {swe_request("hill", 64, 1),
                                              swe_request("hill", 1, 2)};
  EXPECT_EQ(coalesce_batch(queue, 8), std::vector<size_t>{0});
}

TEST(ForecastCoalescer, DuplicateSpecsDeduplicate) {
  // Same seed: the 2-member request is a subset of the head's roster, so it
  // rides along even at cap 4.
  const std::vector<ForecastRequest> queue = {swe_request("hill", 4, 5),
                                              swe_request("hill", 2, 5)};
  EXPECT_EQ(coalesce_batch(queue, 4), (std::vector<size_t>{0, 1}));
}

// --- Forecast service -------------------------------------------------------

TEST(ForecastService, ServesRequestBitwiseEqualToSoloRun) {
  ensemble::ForecastService service;
  auto ticket = service.submit(swe_request("hill", 2, 7, 2));
  const ForecastResult result = ticket.result.get();
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.members.size(), 2u);
  EXPECT_GT(result.latency_seconds, 0.0);
  EXPECT_EQ(result.batch_members, 2);

  // The served fields must equal a local solo integration of each member.
  const swe::SweConfig cfg = standard_swe_config(12, 2);
  for (const MemberForecast& member : result.members) {
    auto solo = solo_member<swe::SweModel>(cfg, service.options().num_ranks, exec::RunOptions{},
                                           "hill", member.spec, service.options().amplitude);
    for (int s = 0; s < 2; ++s) solo->step();
    std::vector<verify::RankView> views;
    for (int r = 0; r < solo->num_ranks(); ++r) {
      const grid::RankInfo info = solo->partitioner().info(r);
      views.push_back(verify::RankView{&solo->state(r).catalog(), info.tile, info.i0, info.j0,
                                       info.ni, info.nj});
    }
    ASSERT_FALSE(member.fields.empty());
    for (const verify::GoldenField& field : member.fields) {
      const verify::GoldenField expected =
          verify::assemble_field(field.name, grid::kNumFaces, solo->partitioner().n(), views);
      EXPECT_EQ(field, expected) << "member " << member.spec.index << " field " << field.name;
    }
  }
}

TEST(ForecastService, ThreeRequestsWithMixedSeedsShareOneBatch) {
  ensemble::ForecastService service;
  // Occupy the single worker so the next three requests queue up together.
  auto busy = service.submit(swe_request("hill", 4, 1, 3));
  auto a = service.submit(swe_request("jet", 1, 2));  // roster {2:0}
  auto b = service.submit(swe_request("jet", 2, 3));  // roster {3:0, 3:1}
  auto c = service.submit(swe_request("jet", 1, 3));  // duplicate of {3:0}
  service.drain();
  const ForecastResult ra = a.result.get();
  const ForecastResult rb = b.result.get();
  const ForecastResult rc = c.result.get();
  ASSERT_TRUE(busy.result.get().ok && ra.ok && rb.ok && rc.ok);
  EXPECT_EQ(ra.coalesced_requests, 3);
  EXPECT_EQ(rb.coalesced_requests, 3);
  EXPECT_EQ(rc.coalesced_requests, 3);
  EXPECT_EQ(ra.batch_members, 3);  // deduplicated roster {2:0, 3:0, 3:1}
  // c's single member is bitwise b's first member — one integration served both.
  ASSERT_EQ(rc.members.size(), 1u);
  EXPECT_EQ(rc.members[0].fields, rb.members[0].fields);
}

TEST(ForecastService, OutOfOrderCompletionViaCoalescing) {
  ensemble::ForecastService service;
  auto busy = service.submit(swe_request("hill", 4, 1, 3));   // claims the worker
  auto loner = service.submit(swe_request("jet", 1, 2, 1));   // next head, steps=1
  auto stranded = service.submit(swe_request("vortex", 1, 3, 2));  // incompatible with loner
  auto rider = service.submit(swe_request("jet", 1, 4, 1));   // coalesces with loner
  service.drain();
  const ForecastResult r_stranded = stranded.result.get();
  const ForecastResult r_rider = rider.result.get();
  ASSERT_TRUE(r_stranded.ok && r_rider.ok);
  // rider was submitted after stranded but completed before it by riding
  // loner's batch.
  EXPECT_LT(r_rider.sequence, r_stranded.sequence);
  EXPECT_EQ(r_rider.coalesced_requests, 2);
  EXPECT_EQ(r_stranded.coalesced_requests, 1);
}

TEST(ForecastService, SharedMembersComputedOnceAndIdentical) {
  ensemble::ForecastService service;
  auto busy = service.submit(swe_request("vortex", 2, 9, 2));  // occupy the worker
  auto a = service.submit(swe_request("hill", 4, 5, 1));
  auto b = service.submit(swe_request("hill", 2, 5, 1));  // subset of a's roster
  service.drain();
  const ForecastResult ra = a.result.get();
  const ForecastResult rb = b.result.get();
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_EQ(ra.batch_members, 4);  // deduplicated roster, not 6
  EXPECT_EQ(rb.batch_members, 4);
  ASSERT_EQ(rb.members.size(), 2u);
  for (size_t m = 0; m < rb.members.size(); ++m) {
    EXPECT_EQ(rb.members[m].spec, ra.members[m].spec);
    EXPECT_EQ(rb.members[m].fields, ra.members[m].fields);
  }
  const ensemble::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced_requests, 2);
  (void)busy.result.get();
}

TEST(ForecastService, CancelPendingNotRunning) {
  ensemble::ForecastService service;
  auto busy = service.submit(swe_request("hill", 4, 1, 3));  // claims the worker
  auto doomed = service.submit(swe_request("vortex", 2, 2, 1));
  EXPECT_TRUE(service.cancel(doomed.id));
  EXPECT_FALSE(service.cancel(doomed.id));    // already gone
  EXPECT_FALSE(service.cancel(999999));       // never existed
  const ForecastResult r = doomed.result.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "cancelled");
  service.drain();
  const ForecastResult rb = busy.result.get();
  EXPECT_TRUE(rb.ok);  // a claimed request is never cancelled mid-run
  EXPECT_EQ(service.stats().cancelled, 1);
}

TEST(ForecastService, InvalidRequestFailsFast) {
  ensemble::ForecastService service;
  ForecastRequest bad = swe_request("hill", 2, 1);
  bad.core = "mars";
  auto ticket = service.submit(bad);
  const ForecastResult r = ticket.result.get();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown core"), std::string::npos);
  ForecastRequest bad_ic = swe_request("tsunami", 2, 1);
  const ForecastResult r2 = service.submit(bad_ic).result.get();
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(service.stats().failed, 2);
}

TEST(ForecastService, DycoreRequestServed) {
  ensemble::ForecastService service;
  ForecastRequest request;
  request.core = "dycore";
  request.ic = "baro";
  request.npx = 12;
  request.npz = 4;
  request.ntracers = 1;
  request.members = 2;
  request.seed = 3;
  request.steps = 1;
  const ForecastResult r = service.submit(request).result.get();
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.members.size(), 2u);
  // u, v, w, delp, pt, delz, q0
  EXPECT_EQ(r.members[0].fields.size(), 7u);
}

// --- Chaos: crashed rank mid-batch recovers and stays bitwise ---------------

TEST(ForecastServiceChaos, CrashedRankMidBatchStillBitwiseCorrect) {
  ensemble::ForecastService::Options options;
  options.runtime.faults.drop_rate = 0.05;
  options.runtime.faults.corrupt_rate = 0.05;
  options.runtime.faults.failure = comm::FaultPlan::Failure::Crash;
  options.runtime.faults.fail_rank = 1;
  options.runtime.faults.fail_step = 1;
  options.runtime.faults.seed = 0xC4A5ull;
  ensemble::ForecastService chaotic(options);
  ensemble::ForecastService clean;

  ForecastRequest request = swe_request("hill", 3, 0xFEEDull, 2);
  request.chaos = true;
  const ForecastResult faulted = chaotic.submit(request).result.get();
  ASSERT_TRUE(faulted.ok) << faulted.error;
  EXPECT_GE(faulted.report.restarts, 3);  // every member's rank 1 crashed once

  ForecastRequest same = request;
  same.chaos = false;
  const ForecastResult reference = clean.submit(same).result.get();
  ASSERT_TRUE(reference.ok) << reference.error;
  ASSERT_EQ(faulted.members.size(), reference.members.size());
  for (size_t m = 0; m < faulted.members.size(); ++m) {
    EXPECT_EQ(faulted.members[m].fields, reference.members[m].fields) << "member " << m;
  }
}

}  // namespace
}  // namespace cyclone::ensemble
