// Parameterized property sweep over dycore configurations: every
// combination must (a) run stably, (b) conserve air mass to tolerance, and
// (c) remain decomposition-independent between 6 and 24 ranks. This is the
// "any configuration of multiple subdomains" testing the paper's Sec. IV-A
// standard partitioner enables.

#include <gtest/gtest.h>

#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"

namespace cyclone::fv3 {
namespace {

struct SweepCase {
  int npx;
  int npz;
  int k_split;
  int n_split;
  int ntracers;
  int nord;
  bool riem3;
};

class DycoreSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DycoreSweep, StableConservativeDecompositionIndependent) {
  const SweepCase& c = GetParam();
  FvConfig cfg;
  cfg.npx = c.npx;
  cfg.npz = c.npz;
  cfg.k_split = c.k_split;
  cfg.n_split = c.n_split;
  cfg.ntracers = c.ntracers;
  cfg.nord = c.nord;
  cfg.do_riem_solver3 = c.riem3;
  cfg.dt = 300.0;

  DistributedModel m6(cfg, 6);
  init_baroclinic(m6);
  const GlobalDiagnostics before = m6.diagnostics();
  m6.step();
  const GlobalDiagnostics after = m6.diagnostics();

  ASSERT_TRUE(after.finite());
  EXPECT_LT(after.max_wind, 150.0);
  EXPECT_NEAR(after.total_mass / before.total_mass, 1.0, 5e-3);

  DistributedModel m24(cfg, 24);
  init_baroclinic(m24);
  m24.step();
  const GlobalDiagnostics d24 = m24.diagnostics();
  EXPECT_NEAR(after.total_mass, d24.total_mass, 1e-6 * after.total_mass);
  EXPECT_NEAR(after.max_wind, d24.max_wind, 1e-6 * (after.max_wind + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DycoreSweep,
    ::testing::Values(SweepCase{12, 8, 1, 2, 2, 1, true},   // default-ish
                      SweepCase{12, 8, 2, 1, 2, 1, true},   // remap-heavy
                      SweepCase{12, 6, 1, 3, 0, 1, true},   // no tracers
                      SweepCase{12, 8, 1, 2, 2, 0, true},   // nord = 0
                      SweepCase{12, 8, 1, 2, 2, 1, false},  // no riem3
                      SweepCase{24, 4, 1, 1, 1, 1, true},   // wide & shallow
                      SweepCase{12, 16, 1, 1, 1, 1, true}), // deep
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const auto& c = info.param;
      return "c" + std::to_string(c.npx) + "z" + std::to_string(c.npz) + "k" +
             std::to_string(c.k_split) + "n" + std::to_string(c.n_split) + "t" +
             std::to_string(c.ntracers) + "nord" + std::to_string(c.nord) +
             (c.riem3 ? "r3" : "r1");
    });

}  // namespace
}  // namespace cyclone::fv3
