#include <gtest/gtest.h>

#include <cmath>

#include "core/util/rng.hpp"
#include "fv3/init/baroclinic.hpp"
#include "fv3/latlon.hpp"
#include "fv3/serialization.hpp"

namespace cyclone::fv3 {
namespace {

FvConfig small_config() {
  FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 6;
  cfg.k_split = 1;
  cfg.n_split = 1;
  cfg.ntracers = 1;
  cfg.dt = 300.0;
  return cfg;
}

TEST(LatLon, SolidBodyWindsProjectEastward) {
  const FvConfig cfg = small_config();
  grid::Partitioner part(cfg.npx, 1, 1);
  // Equatorial tile of a solid-body rotation: east wind everywhere.
  ModelState state(cfg, part, 0);
  init_solid_body(state, part, 25.0);
  FieldD ue("ue", 12, 12, 1), vn("vn", 12, 12, 1);
  winds_to_earth(state, part, 0, ue, vn);
  for (int j = 2; j < 10; ++j) {
    for (int i = 2; i < 10; ++i) {
      EXPECT_NEAR(ue(i, j, 0), 25.0 * std::cos(state.geometry().lat(i, j)), 1.5);
      EXPECT_NEAR(vn(i, j, 0), 0.0, 1.5);
    }
  }
}

TEST(LatLon, SamplingCoversSphereWithOwnedValues) {
  const FvConfig cfg = small_config();
  DistributedModel model(cfg, 6);
  // Paint each rank's tracer with its tile id.
  for (int r = 0; r < 6; ++r) {
    model.state(r).f("q0").fill(static_cast<double>(model.partitioner().info(r).tile));
  }
  const LatLonGrid grid = sample_latlon(model, "q0", 0, 18, 36);
  // Poles map to the polar faces.
  EXPECT_EQ(grid.at(17, 0), 4.0);  // north pole row -> face 4
  EXPECT_EQ(grid.at(0, 0), 5.0);   // south pole row -> face 5
  // All six faces appear.
  std::set<double> seen(grid.values.begin(), grid.values.end());
  EXPECT_EQ(seen.size(), 6u);
}

TEST(LatLon, AsciiMapHasExpectedShape) {
  LatLonGrid grid;
  grid.nlat = 4;
  grid.nlon = 8;
  grid.values.assign(32, 0.0);
  grid.at(2, 3) = 1.0;
  const std::string map = ascii_map(grid, " X");
  // 4 rows of 8 chars + newlines; the hot cell renders as 'X'.
  EXPECT_EQ(map.size(), 4u * 9u);
  EXPECT_EQ(std::count(map.begin(), map.end(), 'X'), 1);
  EXPECT_EQ(map[1 * 9 + 3], 'X');  // row 1 from top = lat index 2
}

TEST(Savepoint, CaptureRestoreRoundTrip) {
  FieldCatalog cat;
  Rng rng(5);
  cat.create("a", 6, 5, 4, HaloSpec{2, 2}).fill_with([&](int, int, int) {
    return rng.uniform(-1, 1);
  });
  cat.create("b", 6, 5, 1, HaloSpec{2, 2}).fill(3.0);

  const Savepoint sp = Savepoint::capture(cat, {"a", "b"});
  EXPECT_EQ(sp.max_diff(cat), 0.0);

  cat.at("a").fill(0.0);
  EXPECT_GT(sp.max_diff(cat), 0.0);
  sp.restore(cat);
  EXPECT_EQ(sp.max_diff(cat), 0.0);
}

TEST(Savepoint, FileRoundTripIsExact) {
  FieldCatalog cat;
  Rng rng(6);
  cat.create("q", 5, 7, 3, HaloSpec{1, 1}).fill_with([&](int, int, int) {
    return rng.uniform(-10, 10);
  });
  const std::string path = std::string(::testing::TempDir()) + "/sp.bin";
  Savepoint::capture(cat, {"q"}).save(path);
  const Savepoint loaded = Savepoint::load(path);
  EXPECT_EQ(loaded.max_diff(cat), 0.0);
  ASSERT_EQ(loaded.field_names().size(), 1u);
  EXPECT_EQ(loaded.field_names()[0], "q");
}

TEST(Savepoint, ShapeMismatchRejected) {
  FieldCatalog a, b;
  a.create("q", 4, 4, 2);
  b.create("q", 5, 4, 2);
  const Savepoint sp = Savepoint::capture(a, {"q"});
  EXPECT_THROW(sp.restore(b), Error);
}

TEST(Savepoint, ModuleRegressionWorkflow) {
  // The paper's workflow: capture inputs, run the module, capture outputs;
  // later runs replay the inputs and diff against the saved outputs.
  const FvConfig cfg = small_config();
  DistributedModel model(cfg, 6);
  init_baroclinic(model);

  const auto progs = ModelState::prognostic_names(cfg.ntracers);
  const Savepoint inputs = Savepoint::capture(model.state(0).catalog(), progs);
  model.step();
  const Savepoint outputs = Savepoint::capture(model.state(0).catalog(), progs);

  // Replay: fresh model, restored inputs on every rank would be needed for
  // a true replay; here rank 0's state is restored and the snapshot must
  // diff exactly zero against itself.
  inputs.restore(model.state(0).catalog());
  EXPECT_EQ(inputs.max_diff(model.state(0).catalog()), 0.0);
  EXPECT_GT(outputs.max_diff(model.state(0).catalog()), 0.0);
}

}  // namespace
}  // namespace cyclone::fv3
