// Property-based fuzzing of the fusion transformations: generate random
// producer/consumer stencil chains, fuse every legal pair with OTF and SGF,
// and verify the fused program computes the same fields as the original on
// random data. This exercises the rewriter far beyond the hand-written
// cases (offset patterns, select/min/max, multi-statement producers,
// dying/live intermediates).

#include <gtest/gtest.h>

#include "core/dsl/builder.hpp"
#include "core/exec/tape.hpp"
#include "core/util/rng.hpp"
#include "core/dsl/analysis.hpp"
#include "core/xform/fusion.hpp"

namespace cyclone::xform {
namespace {

using dsl::E;
using dsl::FieldVar;
using dsl::StencilBuilder;

/// Random expression over `inputs` with bounded offsets and depth.
E random_expr(Rng& rng, const std::vector<FieldVar>& inputs, int depth) {
  if (depth <= 0 || rng.next_below(4) == 0) {
    if (rng.next_below(5) == 0) return E(rng.uniform(0.2, 2.0));
    const auto& f = inputs[rng.next_below(inputs.size())];
    const int di = static_cast<int>(rng.next_below(3)) - 1;
    const int dj = static_cast<int>(rng.next_below(3)) - 1;
    return f(di, dj);
  }
  const E a = random_expr(rng, inputs, depth - 1);
  const E b = random_expr(rng, inputs, depth - 1);
  switch (rng.next_below(6)) {
    case 0: return a + b;
    case 1: return a - b;
    case 2: return a * b * 0.5;
    case 3: return dsl::min(a, b);
    case 4: return dsl::max(a, b);
    default: return dsl::select(a > b, a, b + 0.25);
  }
}

struct Chain {
  ir::Program program;
  std::vector<std::string> outputs;  ///< externally-observable fields
};

/// A two-node chain: producer writes "mid" (and possibly "aux"), consumer
/// reads them into "out".
Chain random_chain(uint64_t seed) {
  Rng rng(seed);
  Chain chain;

  StencilBuilder pb("producer");
  auto in = pb.field("in");
  auto in2 = pb.field("in2");
  auto mid = pb.field("mid");
  const bool with_aux = rng.next_below(2) == 0;
  auto aux = pb.field("aux");
  {
    auto c = pb.parallel().full();
    c.assign(mid, random_expr(rng, {in, in2}, 2));
    if (with_aux) c.assign(aux, random_expr(rng, {in, in2, mid}, 2));
  }

  StencilBuilder cb("consumer");
  auto mid2 = cb.field("mid");
  auto out = cb.field("out");
  std::vector<FieldVar> consumer_inputs = {mid2, cb.field("in")};
  if (with_aux) consumer_inputs.push_back(cb.field("aux"));
  cb.parallel().full().assign(out, random_expr(rng, consumer_inputs, 3));

  chain.program.append_state(
      ir::State{"s0",
                {ir::SNode::make_stencil("p", pb.build(), {}, sched::tuned_horizontal()),
                 ir::SNode::make_stencil("c", cb.build(), {}, sched::tuned_horizontal())}});
  chain.program.set_field_meta("mid", ir::FieldMeta{ir::FieldKind::Center3D, true});
  chain.program.set_field_meta("aux", ir::FieldMeta{ir::FieldKind::Center3D, true});
  chain.outputs = {"out"};
  if (with_aux) chain.outputs.push_back("aux");
  chain.outputs.push_back("mid");
  return chain;
}

FieldCatalog make_fields(uint64_t seed) {
  FieldCatalog cat;
  Rng rng(seed);
  for (const char* name : {"in", "in2", "mid", "aux", "out"}) {
    auto& f = cat.create(name, 10, 9, 4, HaloSpec{3, 3});
    f.fill_with([&](int, int, int) { return rng.uniform(-1, 1); });
  }
  return cat;
}

void run_state(const ir::Program& prog, FieldCatalog& cat) {
  prog.execute_state(0, cat, exec::LaunchDomain{10, 9, 4});
}

/// Base seed of the fuzz suite. Per-test seeds are derived with Rng::mix so
/// consecutive test indices get decorrelated streams (plain `base + i`
/// seeding makes xoshiro streams start near each other), and the program
/// and data streams are split from the same per-test seed so a failure
/// reproduces standalone from the one value printed in the message.
constexpr uint64_t kFuzzBaseSeed = 0xF051F022ull;

class FusionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FusionFuzz, FusedChainMatchesOriginalInterior) {
  const uint64_t seed = Rng::mix(kFuzzBaseSeed, static_cast<uint64_t>(GetParam()));
  SCOPED_TRACE(::testing::Message() << "base=" << kFuzzBaseSeed << " seed=" << seed);
  Chain chain = random_chain(seed);

  const uint64_t data_seed = Rng::mix(seed, /*stream=*/1);
  FieldCatalog ref = make_fields(data_seed);
  run_state(chain.program, ref);

  for (int kind : {0, 1}) {
    const auto& state = chain.program.states()[0];
    const auto& a = state.nodes[0];
    const auto& b = state.nodes[1];
    ir::SNode fused;
    try {
      if (kind == 0) {
        if (!can_fuse_otf(a, b).ok) continue;
        fused = fuse_otf(a, b, "otf", {"mid", "aux"});
      } else {
        if (!can_fuse_subgraph(a, b).ok) continue;
        fused = fuse_subgraph(a, b, "sgf", {"mid", "aux"});
      }
    } catch (const Error&) {
      continue;  // rewriter refused (e.g. merged validation failure): fine
    }

    ir::Program fused_prog;
    fused_prog.append_state(ir::State{"s0", {fused}});
    FieldCatalog got = make_fields(data_seed);
    run_state(fused_prog, got);

    // Compare the externally visible outputs over the interior (at the
    // domain edge the unfused reference reads stale intermediate halos that
    // fusion legitimately recomputes).
    double diff = 0;
    const dsl::AccessInfo acc = dsl::analyze(*fused.stencil);
    for (int k = 0; k < 4; ++k) {
      for (int j = 3; j < 6; ++j) {
        for (int i = 3; i < 7; ++i) {
          for (const auto& out : {std::string("out")}) {
            if (!acc.writes_field(out) && !acc.reads_field(out)) continue;
            diff = std::max(diff, std::abs(ref.at(out)(i, j, k) - got.at(out)(i, j, k)));
          }
        }
      }
    }
    EXPECT_LT(diff, 1e-12) << "seed " << seed << " kind " << kind;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionFuzz, ::testing::Range(0, 24));

}  // namespace
}  // namespace cyclone::xform
