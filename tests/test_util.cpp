#include <gtest/gtest.h>

#include "core/util/error.hpp"
#include "core/util/loc.hpp"
#include "core/util/rng.hpp"
#include "core/util/strings.hpp"
#include "core/util/timer.hpp"

namespace cyclone {
namespace {

TEST(Error, RequireThrowsWithMessage) {
  try {
    CY_REQUIRE_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(CY_REQUIRE(2 + 2 == 4));
  EXPECT_NO_THROW(CY_ENSURE(true));
}

TEST(Error, EnsureThrows) { EXPECT_THROW(CY_ENSURE(false), Error); }

TEST(Strings, Format) {
  EXPECT_EQ(str::format("%d-%s-%.1f", 7, "x", 2.5), "7-x-2.5");
  EXPECT_EQ(str::format("empty"), "empty");
}

TEST(Strings, JoinAndSplit) {
  EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(str::join({}, ","), "");
  const auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(str::trim("  hi \t\n"), "hi");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(str::starts_with("hello.cpp", "hello"));
  EXPECT_FALSE(str::starts_with("hi", "hello"));
  EXPECT_TRUE(str::ends_with("hello.cpp", ".cpp"));
  EXPECT_FALSE(str::ends_with(".cpp", "hello.cpp"));
}

TEST(Strings, HumanUnits) {
  EXPECT_EQ(str::human_bytes(512), "512.00 B");
  EXPECT_EQ(str::human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(str::human_time(0.5), "500.00 ms");
  EXPECT_EQ(str::human_time(2.0), "2.000 s");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.next_u64() != b.next_u64();
  EXPECT_GT(differing, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NextBelow) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Loc, CountsCodeLinesOnly) {
  const std::string path = std::string(::testing::TempDir()) + "/loc_sample.cpp";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("// comment only\n\nint x = 1;\n/* block\n   comment */\nint y = 2;\n", f);
    fclose(f);
  }
  const auto c = loc::count_file(path);
  EXPECT_EQ(c.files, 1);
  EXPECT_EQ(c.total_lines, 6);
  EXPECT_EQ(c.code_lines, 2);
}

TEST(Loc, MissingFileIsZero) {
  const auto c = loc::count_file("/nonexistent/nowhere.cpp");
  EXPECT_EQ(c.files, 0);
  EXPECT_EQ(c.code_lines, 0);
}

}  // namespace
}  // namespace cyclone
