#include <gtest/gtest.h>

#include "core/dsl/analysis.hpp"
#include "core/orch/orchestrate.hpp"
#include "fv3/driver.hpp"
#include "fv3/init/baroclinic.hpp"

namespace cyclone::orch {
namespace {

TEST(Orchestrate, PropagatesConstantsAndBindings) {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.ntracers = 2;
  grid::Partitioner part(cfg.npx, 1, 1);
  fv3::ModelState state(cfg, part, 0);
  ir::Program prog = fv3::build_dycore_program(state);

  const OrchestrationReport report = orchestrate(prog);
  EXPECT_GT(report.stencils_processed, 20);
  EXPECT_GT(report.params_propagated, 5);
  EXPECT_GT(report.bindings_resolved, 5);

  // After orchestration no node carries runtime parameters or bindings, and
  // no stencil references an unbound scalar.
  for (const auto& st : prog.states()) {
    for (const auto& node : st.nodes) {
      if (node.kind != ir::SNode::Kind::Stencil) continue;
      EXPECT_TRUE(node.args.params.empty());
      EXPECT_TRUE(node.args.bind.empty());
      const dsl::AccessInfo acc = dsl::analyze(*node.stencil);
      EXPECT_TRUE(acc.params.empty()) << node.label;
    }
  }
}

TEST(Orchestrate, ExecutionUnchanged) {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.k_split = 1;
  cfg.n_split = 2;
  cfg.ntracers = 2;
  cfg.dt = 300.0;

  fv3::DistributedModel plain(cfg, 6);
  fv3::init_baroclinic(plain);
  fv3::DistributedModel orchestrated(cfg, 6);
  fv3::init_baroclinic(orchestrated);
  orchestrate(orchestrated.program());

  plain.step();
  orchestrated.step();

  for (int r = 0; r < 6; ++r) {
    for (const auto& name : fv3::ModelState::prognostic_names(cfg.ntracers)) {
      EXPECT_EQ(
          FieldD::max_abs_diff(plain.state(r).f(name), orchestrated.state(r).f(name)), 0.0)
          << "rank " << r << " field " << name;
    }
  }
}

TEST(Orchestrate, StatsMatchProgramScale) {
  fv3::FvConfig cfg;
  cfg.npx = 12;
  cfg.npz = 8;
  cfg.ntracers = 4;
  grid::Partitioner part(cfg.npx, 1, 1);
  fv3::ModelState state(cfg, part, 0);
  ir::Program prog = fv3::build_dycore_program(state);
  const auto report = orchestrate(prog);
  // The orchestrated dycore is a sizable state machine (the paper reports
  // thousands of nodes for the full model; ours is a mini-dycore).
  EXPECT_GT(report.stats.states, 8);
  EXPECT_GT(report.stats.dataflow_nodes, 300);
  EXPECT_GT(report.stats.stencil_ops, 80);
  EXPECT_EQ(report.stats.max_node_invocations, cfg.k_split * cfg.n_split);
}

}  // namespace
}  // namespace cyclone::orch
